package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func hcRoundTrip(t *testing.T, src []byte, depth int) []byte {
	t.Helper()
	dst := make([]byte, CompressBound(len(src)))
	n, err := CompressBlockHC(src, dst, depth)
	if err != nil {
		t.Fatalf("CompressBlockHC: %v", err)
	}
	got, err := Decompress(dst[:n], len(src))
	if err != nil {
		t.Fatalf("Decompress of HC output: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("HC round trip mismatch")
	}
	return dst[:n]
}

func TestHCRoundTripBasics(t *testing.T) {
	hcRoundTrip(t, nil, 0)
	hcRoundTrip(t, []byte("x"), 0)
	hcRoundTrip(t, bytes.Repeat([]byte{7}, 100000), 0)
	hcRoundTrip(t, []byte(strings.Repeat("scientific data streaming ", 500)), 16)
	noise := make([]byte, 1<<15)
	rand.New(rand.NewSource(1)).Read(noise)
	hcRoundTrip(t, noise, 0)
}

func TestHCBeatsFastOnRepetitiveData(t *testing.T) {
	// Interleave two alternating patterns so the single-candidate fast
	// table keeps evicting the useful match while the chain finds it.
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(2))
	pats := make([][]byte, 8)
	for i := range pats {
		pats[i] = make([]byte, 100)
		rng.Read(pats[i])
	}
	for i := 0; i < 500; i++ {
		b.Write(pats[rng.Intn(len(pats))])
	}
	src := b.Bytes()
	fast := Compress(src)
	hc := hcRoundTrip(t, src, 0)
	if len(hc) > len(fast) {
		t.Fatalf("HC output %d bytes > fast %d bytes", len(hc), len(fast))
	}
	if len(hc) == len(fast) {
		t.Logf("HC matched fast exactly (%d bytes) — acceptable but unusual", len(hc))
	}
}

func TestHCNeverWorseThanFastOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		var b bytes.Buffer
		for b.Len() < 1<<14 {
			switch rng.Intn(3) {
			case 0:
				b.Write(bytes.Repeat([]byte{byte(rng.Intn(8))}, rng.Intn(300)+1))
			case 1:
				pat := make([]byte, rng.Intn(30)+4)
				rng.Read(pat)
				b.Write(bytes.Repeat(pat, rng.Intn(20)+1))
			default:
				noise := make([]byte, rng.Intn(100))
				rng.Read(noise)
				b.Write(noise)
			}
		}
		src := b.Bytes()
		fast := Compress(src)
		hc := CompressHC(src, 0)
		if len(hc) > len(fast)+len(fast)/100 {
			t.Fatalf("trial %d: HC %d bytes noticeably worse than fast %d", trial, len(hc), len(fast))
		}
		got, err := Decompress(hc, len(src))
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("trial %d: HC round trip failed: %v", trial, err)
		}
	}
}

func TestHCDepthImprovesRatio(t *testing.T) {
	// More search depth can only help (or tie) on this adversarial
	// many-patterns input.
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(4))
	pats := make([][]byte, 32)
	for i := range pats {
		pats[i] = make([]byte, 64)
		rng.Read(pats[i])
	}
	for i := 0; i < 2000; i++ {
		b.Write(pats[rng.Intn(len(pats))])
	}
	src := b.Bytes()
	shallow := CompressHC(src, 1)
	deep := CompressHC(src, 256)
	if len(deep) > len(shallow) {
		t.Fatalf("depth 256 output %d > depth 1 output %d", len(deep), len(shallow))
	}
}

func TestHCDstTooSmall(t *testing.T) {
	if _, err := CompressBlockHC(make([]byte, 100), make([]byte, 4), 0); err != ErrDstTooSmall {
		t.Fatalf("err = %v, want ErrDstTooSmall", err)
	}
}

func TestHCPropertyRoundTrip(t *testing.T) {
	f := func(src []byte, depthSeed uint8) bool {
		depth := int(depthSeed)%100 + 1
		dst := make([]byte, CompressBound(len(src)))
		n, err := CompressBlockHC(src, dst, depth)
		if err != nil {
			return false
		}
		got, err := Decompress(dst[:n], len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHCPropertyCompressibleRoundTrip(t *testing.T) {
	f := func(seed int64, period uint8, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := int(period)%24 + 1
		pat := make([]byte, p)
		rng.Read(pat)
		src := bytes.Repeat(pat, int(n)%400+1)
		for i := 0; i < len(src)/40; i++ {
			src[rng.Intn(len(src))] ^= byte(rng.Intn(256))
		}
		hc := CompressHC(src, 32)
		got, err := Decompress(hc, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
