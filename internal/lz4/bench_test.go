package lz4

import (
	"bytes"
	"math/rand"
	"testing"
)

// benchCorpus mixes runs, periodic patterns and noise at roughly the
// 2:1 compressibility of projection data.
func benchCorpus(size int) []byte {
	rng := rand.New(rand.NewSource(42))
	var b bytes.Buffer
	for b.Len() < size {
		switch rng.Intn(3) {
		case 0:
			b.Write(bytes.Repeat([]byte{byte(rng.Intn(4))}, rng.Intn(400)+1))
		case 1:
			pat := make([]byte, rng.Intn(12)+2)
			rng.Read(pat)
			b.Write(bytes.Repeat(pat, rng.Intn(40)+1))
		default:
			noise := make([]byte, rng.Intn(300))
			rng.Read(noise)
			b.Write(noise)
		}
	}
	return b.Bytes()[:size]
}

func BenchmarkCompressBlock(b *testing.B) {
	src := benchCorpus(1 << 20)
	dst := make([]byte, CompressBound(len(src)))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressBlock(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressBlockHC(b *testing.B) {
	src := benchCorpus(1 << 20)
	dst := make([]byte, CompressBound(len(src)))
	for _, depth := range []int{4, 64, 256} {
		b.Run(depthName(depth), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := CompressBlockHC(src, dst, depth); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func depthName(d int) string {
	switch d {
	case 4:
		return "depth4"
	case 64:
		return "depth64"
	default:
		return "depth256"
	}
}

func BenchmarkDecompressBlock(b *testing.B) {
	src := benchCorpus(1 << 20)
	packed := Compress(src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBlock(packed, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameWriter(b *testing.B) {
	src := benchCorpus(256 << 10)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteBlock(src); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
