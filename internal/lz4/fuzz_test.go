package lz4

import (
	"bytes"
	"testing"
)

// Fuzz targets: `go test -fuzz=FuzzRoundTrip ./internal/lz4`. Under
// plain `go test` the seed corpus below runs as regression tests.

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add(bytes.Repeat([]byte("abc"), 100))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, src []byte) {
		dst := make([]byte, CompressBound(len(src)))
		n, err := CompressBlock(src, dst)
		if err != nil {
			t.Fatalf("CompressBlock: %v", err)
		}
		got, err := Decompress(dst[:n], len(src))
		if err != nil {
			t.Fatalf("Decompress: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
		// HC must agree with the same decoder.
		nhc, err := CompressBlockHC(src, dst, 16)
		if err != nil {
			t.Fatalf("CompressBlockHC: %v", err)
		}
		got, err = Decompress(dst[:nhc], len(src))
		if err != nil || !bytes.Equal(got, src) {
			t.Fatalf("HC round trip: %v", err)
		}
	})
}

func FuzzDecompressNeverPanics(f *testing.F) {
	f.Add([]byte{0x60, 'a', 'b', 'c', 'd', 'e', 'f'}, 6)
	f.Add([]byte{0x1f, 'a', 0x01, 0x00, 0x00}, 20)
	f.Add([]byte{0xff, 0xff, 0xff}, 100)
	f.Fuzz(func(t *testing.T, junk []byte, size int) {
		if size < 0 || size > 1<<20 {
			return
		}
		dst := make([]byte, size)
		// Must error or succeed, never panic or write out of bounds.
		_, _ = DecompressBlock(junk, dst)
	})
}
