package lz4

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame container: a minimal self-describing stream of LZ4 blocks used
// when chunks are written to disk or piped between tools. Layout:
//
//	magic   [4]byte  "LZ4N"
//	version byte     1
//	blocks  repeated:
//	    uncompressedLen uint32 LE   (0 terminates the stream)
//	    compressedLen   uint32 LE
//	    payload         [compressedLen]byte
//	    crc32           uint32 LE   (Castagnoli, over the payload)
//
// A block whose compressedLen equals its uncompressedLen is stored raw
// (the compressor output was not smaller), matching the convention of the
// official frame format's uncompressed blocks.

var frameMagic = [4]byte{'L', 'Z', '4', 'N'}

const frameVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer compresses blocks onto an underlying io.Writer using the frame
// container. Close must be called to terminate the frame.
type Writer struct {
	w       *bufio.Writer
	started bool
	closed  bool
	scratch []byte
}

// NewWriter returns a frame Writer targeting w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteBlock compresses p as one frame block. Blocks are the unit of
// decompression; callers should pass whole chunks (e.g. one projection).
func (fw *Writer) WriteBlock(p []byte) error {
	if fw.closed {
		return fmt.Errorf("lz4: write on closed frame writer")
	}
	if !fw.started {
		if err := fw.writeHeader(); err != nil {
			return err
		}
	}
	if len(p) == 0 {
		return nil // zero-length blocks would collide with the terminator
	}
	if cap(fw.scratch) < CompressBound(len(p)) {
		fw.scratch = make([]byte, CompressBound(len(p)))
	}
	n, err := CompressBlock(p, fw.scratch[:cap(fw.scratch)])
	if err != nil {
		return err
	}
	payload := fw.scratch[:n]
	if n >= len(p) {
		payload = p // store raw; compression did not help
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(p)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	_, err = fw.w.Write(sum[:])
	return err
}

func (fw *Writer) writeHeader() error {
	fw.started = true
	if _, err := fw.w.Write(frameMagic[:]); err != nil {
		return err
	}
	return fw.w.WriteByte(frameVersion)
}

// Close writes the frame terminator and flushes. It does not close the
// underlying writer.
func (fw *Writer) Close() error {
	if fw.closed {
		return nil
	}
	if !fw.started {
		if err := fw.writeHeader(); err != nil {
			return err
		}
	}
	fw.closed = true
	var term [4]byte // uncompressedLen == 0
	if _, err := fw.w.Write(term[:]); err != nil {
		return err
	}
	return fw.w.Flush()
}

// Reader decompresses frame blocks from an underlying io.Reader.
type Reader struct {
	r       *bufio.Reader
	started bool
	done    bool
}

// NewReader returns a frame Reader consuming r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadBlock returns the next decompressed block, or io.EOF after the
// frame terminator.
func (fr *Reader) ReadBlock() ([]byte, error) {
	if fr.done {
		return nil, io.EOF
	}
	if !fr.started {
		if err := fr.readHeader(); err != nil {
			return nil, err
		}
	}
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("lz4: reading block header: %w", err)
	}
	uLen := binary.LittleEndian.Uint32(hdr[:])
	if uLen == 0 {
		fr.done = true
		return nil, io.EOF
	}
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("lz4: reading block header: %w", err)
	}
	cLen := binary.LittleEndian.Uint32(hdr[:])
	if cLen == 0 || cLen > uLen {
		return nil, fmt.Errorf("%w: block sizes u=%d c=%d", ErrCorrupt, uLen, cLen)
	}
	payload := make([]byte, cLen)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("lz4: reading block payload: %w", err)
	}
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("lz4: reading block checksum: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[:]); got != want {
		return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	if cLen == uLen {
		return payload, nil // stored raw
	}
	return Decompress(payload, int(uLen))
}

func (fr *Reader) readHeader() error {
	fr.started = true
	var hdr [5]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return fmt.Errorf("lz4: reading frame header: %w", err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return fmt.Errorf("%w: bad frame magic %q", ErrCorrupt, hdr[:4])
	}
	if hdr[4] != frameVersion {
		return fmt.Errorf("%w: unsupported frame version %d", ErrCorrupt, hdr[4])
	}
	return nil
}
