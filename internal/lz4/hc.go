package lz4

// High-compression variant: same block format, better matches. Where
// CompressBlock keeps a single-candidate hash table (the reference
// "fast" strategy the paper's runtime uses for line-rate streaming),
// CompressBlockHC keeps hash chains and examines up to `depth`
// candidates per position, trading compression speed for ratio. The
// runtime can select it for bandwidth-starved paths — the paper's §1
// arithmetic (compression ratio multiplies effective link capacity)
// is exactly the case for spending more CPU per byte.

// HCDefaultDepth is the default chain-search depth, comparable to the
// reference implementation's mid-level.
const HCDefaultDepth = 64

// CompressBlockHC compresses src into dst with hash-chain matching at
// the given search depth (<=0 selects HCDefaultDepth). Output is a
// standard LZ4 block, decodable by DecompressBlock. dst must be at
// least CompressBound(len(src)) bytes.
func CompressBlockHC(src, dst []byte, depth int) (int, error) {
	if len(dst) < CompressBound(len(src)) {
		return 0, ErrDstTooSmall
	}
	if len(src) == 0 {
		return 0, nil
	}
	if len(src) < mfLimit {
		return emitLastLiterals(src, dst, 0, 0), nil
	}
	if depth <= 0 {
		depth = HCDefaultDepth
	}

	head := make([]int32, hashSize) // position+1 of most recent occurrence
	chain := make([]int32, len(src))

	insert := func(i int) {
		h := hash4(load32(src, i))
		chain[i] = head[h] - 1 // previous occurrence, -1 terminates
		head[h] = int32(i + 1)
	}

	sn := len(src) - mfLimit
	matchEnd := len(src) - lastLiterals

	di := 0
	anchor := 0
	si := 0

	for si <= sn {
		insert(si)

		// Walk the chain for the longest match.
		bestLen := 0
		bestRef := -1
		cand := int(chain[si])
		for tries := 0; cand >= 0 && cand < si && si-cand <= maxOffset && tries < depth; tries++ {
			if load32(src, cand) == load32(src, si) {
				l := minMatch
				for si+l < matchEnd && src[cand+l] == src[si+l] {
					l++
				}
				if l > bestLen {
					bestLen = l
					bestRef = cand
				}
			}
			cand = int(chain[cand])
		}
		if bestLen < minMatch {
			si++
			continue
		}

		// Extend backwards over pending literals.
		ref := bestRef
		for si > anchor && ref > 0 && src[si-1] == src[ref-1] {
			si--
			ref--
			bestLen++
		}

		di = emitSequence(dst, di, src[anchor:si], si-ref, bestLen)

		// Index the interior positions the match covers so later
		// matches can reference into it; the position right after the
		// match is inserted by the next loop iteration.
		end := si + bestLen
		if end > sn+1 {
			end = sn + 1
		}
		for i := si + 1; i < end; i++ {
			insert(i)
		}
		si += bestLen
		anchor = si
	}

	return emitLastLiterals(src, dst, anchor, di), nil
}

// CompressHC is the allocating convenience wrapper around
// CompressBlockHC.
func CompressHC(src []byte, depth int) []byte {
	dst := make([]byte, CompressBound(len(src)))
	n, err := CompressBlockHC(src, dst, depth)
	if err != nil {
		// Unreachable: dst is sized by CompressBound.
		panic(err)
	}
	return dst[:n]
}
