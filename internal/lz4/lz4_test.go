package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	dst := make([]byte, CompressBound(len(src)))
	n, err := CompressBlock(src, dst)
	if err != nil {
		t.Fatalf("CompressBlock: %v", err)
	}
	got, err := Decompress(dst[:n], len(src))
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
}

func TestRoundTripEmpty(t *testing.T) {
	n, err := CompressBlock(nil, make([]byte, CompressBound(0)))
	if err != nil {
		t.Fatalf("CompressBlock(nil): %v", err)
	}
	if n != 0 {
		t.Fatalf("compressed empty input to %d bytes, want 0", n)
	}
}

func TestRoundTripTiny(t *testing.T) {
	for i := 1; i < 20; i++ {
		roundTrip(t, bytes.Repeat([]byte{'x'}, i))
	}
}

func TestRoundTripText(t *testing.T) {
	roundTrip(t, []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100)))
}

func TestRoundTripAllSame(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte{0}, 1<<16))
	roundTrip(t, bytes.Repeat([]byte{0xaa}, 12345))
}

func TestRoundTripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 1<<15)
	rng.Read(buf)
	roundTrip(t, buf)
}

func TestRoundTripStructured(t *testing.T) {
	// Mix of runs, periodic patterns and noise, like detector frames.
	rng := rand.New(rand.NewSource(2))
	var b bytes.Buffer
	for b.Len() < 1<<18 {
		switch rng.Intn(3) {
		case 0:
			b.Write(bytes.Repeat([]byte{byte(rng.Intn(4))}, rng.Intn(500)+1))
		case 1:
			pat := make([]byte, rng.Intn(9)+1)
			rng.Read(pat)
			b.Write(bytes.Repeat(pat, rng.Intn(50)+1))
		default:
			noise := make([]byte, rng.Intn(200))
			rng.Read(noise)
			b.Write(noise)
		}
	}
	roundTrip(t, b.Bytes())
}

func TestRoundTripLongMatchOffsets(t *testing.T) {
	// A pattern repeated far apart exercises the 64 KiB offset limit.
	block := make([]byte, 1000)
	rand.New(rand.NewSource(3)).Read(block)
	var b bytes.Buffer
	for i := 0; i < 100; i++ {
		b.Write(block)
		b.Write(bytes.Repeat([]byte{byte(i)}, 700))
	}
	roundTrip(t, b.Bytes())
}

func TestCompressionRatioOnRuns(t *testing.T) {
	src := bytes.Repeat([]byte("abcdabcd"), 4096)
	c := Compress(src)
	if len(c)*10 > len(src) {
		t.Fatalf("highly repetitive input compressed to %d/%d bytes; expected >10x", len(c), len(src))
	}
}

func TestIncompressibleExpansionBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 100000)
	rng.Read(src)
	c := Compress(src)
	if len(c) > CompressBound(len(src)) {
		t.Fatalf("compressed size %d exceeds CompressBound %d", len(c), CompressBound(len(src)))
	}
}

func TestCompressBlockDstTooSmall(t *testing.T) {
	src := make([]byte, 100)
	if _, err := CompressBlock(src, make([]byte, 10)); err != ErrDstTooSmall {
		t.Fatalf("err = %v, want ErrDstTooSmall", err)
	}
}

// Hand-built decompression vectors verify wire-format compatibility
// independent of our own compressor.
func TestDecompressKnownVectors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want []byte
	}{
		{
			name: "literals only",
			in:   []byte{0x60, 'a', 'b', 'c', 'd', 'e', 'f'},
			want: []byte("abcdef"),
		},
		{
			name: "rle via overlapping match",
			// 1 literal 'a', then match offset 1 length 19 (token low
			// nibble 15 + ext 0 => 15, +4 minimum = 19).
			in:   []byte{0x1f, 'a', 0x01, 0x00, 0x00, 0x50, 'b', 'c', 'd', 'e', 'f'},
			want: append(bytes.Repeat([]byte{'a'}, 20), []byte("bcdef")...),
		},
		{
			name: "extended literal length",
			// 15+5 = 20 literals then terminator-style end.
			in:   append([]byte{0xf0, 0x05}, bytes.Repeat([]byte{'z'}, 20)...),
			want: bytes.Repeat([]byte{'z'}, 20),
		},
		{
			name: "non-overlapping match",
			// 8 literals "abcdefgh", match offset 8 len 4 => "abcd",
			// then final literals "tail5".
			in:   []byte{0x80, 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 0x08, 0x00, 0x50, 't', 'a', 'i', 'l', '5'},
			want: []byte("abcdefghabcdtail5"),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decompress(tc.in, len(tc.want))
			if err != nil {
				t.Fatalf("Decompress: %v", err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		size int
	}{
		{"zero offset", []byte{0x10, 'a', 0x00, 0x00}, 10},
		{"offset beyond output", []byte{0x10, 'a', 0x09, 0x00}, 10},
		{"truncated literals", []byte{0x50, 'a'}, 10},
		{"truncated offset", []byte{0x10, 'a', 0x01}, 10},
		{"truncated length ext", []byte{0x1f, 'a', 0x01, 0x00}, 1000},
		{"runaway literal ext", []byte{0xf0, 0xff, 0xff}, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decompress(tc.in, tc.size); err == nil {
				t.Fatal("Decompress accepted corrupt input")
			}
		})
	}
}

func TestDecompressDstTooSmall(t *testing.T) {
	src := Compress(bytes.Repeat([]byte("abcd"), 100))
	dst := make([]byte, 10)
	if _, err := DecompressBlock(src, dst); err != ErrDstTooSmall {
		t.Fatalf("err = %v, want ErrDstTooSmall", err)
	}
}

func TestDecompressWrongSize(t *testing.T) {
	src := Compress([]byte("hello world hello world hello world"))
	if _, err := Decompress(src, 1000); err == nil {
		t.Fatal("Decompress accepted wrong uncompressed size")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		dst := make([]byte, CompressBound(len(src)))
		n, err := CompressBlock(src, dst)
		if err != nil {
			return false
		}
		got, err := Decompress(dst[:n], len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCompressibleRoundTrip biases quick inputs toward repetitive
// data so match-emission paths are exercised, not just literal runs.
func TestPropertyCompressibleRoundTrip(t *testing.T) {
	f := func(seed int64, period uint8, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := int(period)%32 + 1
		pat := make([]byte, p)
		rng.Read(pat)
		src := bytes.Repeat(pat, int(n)%300+1)
		// Sprinkle mutations so matches break and restart.
		for i := 0; i < len(src)/50; i++ {
			src[rng.Intn(len(src))] ^= byte(rng.Intn(256))
		}
		dst := make([]byte, CompressBound(len(src)))
		nc, err := CompressBlock(src, dst)
		if err != nil {
			return false
		}
		got, err := Decompress(dst[:nc], len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecompressNeverPanics(t *testing.T) {
	// Arbitrary garbage must produce an error or short output, never a
	// panic or out-of-bounds write.
	f := func(junk []byte, size uint16) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on junk input: %v", r)
			}
		}()
		dst := make([]byte, int(size)%4096)
		_, _ = DecompressBlock(junk, dst)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	blocks := [][]byte{
		[]byte("first block"),
		bytes.Repeat([]byte("tomography "), 1000),
		make([]byte, 4096), // zeros
	}
	rand.New(rand.NewSource(5)).Read(blocks[2][:2048])

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, b := range blocks {
		if err := w.WriteBlock(b); err != nil {
			t.Fatalf("WriteBlock: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := NewReader(&buf)
	for i, want := range blocks {
		got, err := r.ReadBlock()
		if err != nil {
			t.Fatalf("ReadBlock %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	if _, err := r.ReadBlock(); err == nil {
		t.Fatal("ReadBlock after terminator succeeded")
	}
}

func TestFrameEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := NewReader(&buf)
	if _, err := r.ReadBlock(); err == nil {
		t.Fatal("empty frame returned a block")
	}
}

func TestFrameRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("XXXX\x01\x00\x00\x00\x00")))
	if _, err := r.ReadBlock(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBlock(bytes.Repeat([]byte("data"), 500)); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	raw := buf.Bytes()
	raw[20] ^= 0xff // flip a payload byte
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.ReadBlock(); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

func TestFrameWriteAfterClose(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	w.Close()
	if err := w.WriteBlock([]byte("x")); err == nil {
		t.Fatal("WriteBlock after Close succeeded")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(nil); r != 1 {
		t.Fatalf("Ratio(nil) = %v, want 1", r)
	}
	if r := Ratio(bytes.Repeat([]byte{'a'}, 10000)); r < 50 {
		t.Fatalf("Ratio of constant run = %v, want >= 50", r)
	}
	rng := rand.New(rand.NewSource(6))
	noise := make([]byte, 10000)
	rng.Read(noise)
	if r := Ratio(noise); r > 1.05 {
		t.Fatalf("Ratio of noise = %v, want ~1", r)
	}
}
