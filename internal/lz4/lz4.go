// Package lz4 implements the LZ4 block compression format from scratch in
// pure Go. The paper compresses every 11.0592 MB X-ray projection chunk
// with LZ4 before transmission and decompresses it at the gateway; this
// package is the stand-in for the reference C library (github.com/lz4/lz4).
//
// The block format is the official one: a stream of sequences, each a
// token byte (literal length high nibble, match length - 4 low nibble,
// 15 meaning "extended by 255-value bytes"), the literals, a 2-byte
// little-endian match offset, and the match-length extension bytes. The
// final sequence carries literals only. The compressor uses a 64 Ki-entry
// hash table over 4-byte windows, the same strategy as the reference
// "fast" (level 1) compressor, so compression ratios and the roughly 3:1
// decompress-to-compress speed asymmetry the paper reports both carry
// over.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

const (
	minMatch     = 4  // smallest encodable match
	lastLiterals = 5  // spec: last 5 bytes must be literals
	mfLimit      = 12 // spec: no match may start within 12 bytes of the end
	maxOffset    = 65535

	hashLog  = 16
	hashSize = 1 << hashLog
	// Knuth multiplicative hash constant for 32-bit keys.
	hashMul = 2654435761
)

// Errors returned by this package.
var (
	// ErrDstTooSmall reports a destination buffer smaller than the
	// produced output. Use CompressBound to size compression buffers.
	ErrDstTooSmall = errors.New("lz4: destination buffer too small")
	// ErrCorrupt reports malformed compressed input.
	ErrCorrupt = errors.New("lz4: corrupt compressed data")
)

// CompressBound returns the maximum compressed size for an input of n
// bytes, including worst-case incompressible expansion.
func CompressBound(n int) int {
	return n + n/255 + 16
}

func hash4(u uint32) uint32 {
	return (u * hashMul) >> (32 - hashLog)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// CompressBlock compresses src into dst using the LZ4 block format and
// returns the number of bytes written. dst must be at least
// CompressBound(len(src)) bytes; otherwise ErrDstTooSmall is returned.
// An empty src produces zero output bytes.
func CompressBlock(src, dst []byte) (int, error) {
	if len(dst) < CompressBound(len(src)) {
		return 0, ErrDstTooSmall
	}
	if len(src) == 0 {
		return 0, nil
	}
	// Inputs too short to ever contain a match are emitted as one
	// literal run.
	if len(src) < mfLimit {
		return emitLastLiterals(src, dst, 0, 0), nil
	}

	// The 256 KiB hash table is too large for the stack, and one heap
	// allocation per block would dominate the steady-state allocation
	// profile of a pipeline compressing thousands of chunks. Rent a
	// table and clear it (a memclr is far cheaper than an allocation
	// plus the GC pressure it brings).
	table := tablePool.Get().(*[hashSize]int32)
	clear(table[:])
	n := compressBlock(src, dst, table)
	tablePool.Put(table)
	return n, nil
}

// tablePool recycles fast-path hash tables across CompressBlock calls;
// candidate position + 1 per entry, 0 means empty.
var tablePool = sync.Pool{New: func() any { return new([hashSize]int32) }}

func compressBlock(src, dst []byte, table *[hashSize]int32) int {

	sn := len(src) - mfLimit // last position where a match may start
	matchEnd := len(src) - lastLiterals

	di := 0
	anchor := 0
	si := 0
	searchSteps := 0

	for si <= sn {
		h := hash4(load32(src, si))
		ref := int(table[h]) - 1
		table[h] = int32(si + 1)
		if ref < 0 || si-ref > maxOffset || load32(src, ref) != load32(src, si) {
			// No usable match: advance. The skip strength grows
			// slowly through incompressible regions, mirroring the
			// reference compressor's acceleration behaviour.
			searchSteps++
			si += 1 + (searchSteps >> 6)
			continue
		}
		searchSteps = 0

		// Extend the match backwards over bytes we already counted
		// as literals.
		for si > anchor && ref > 0 && src[si-1] == src[ref-1] {
			si--
			ref--
		}

		// Extend the match forwards, stopping before the mandatory
		// trailing literal region.
		mLen := minMatch
		for si+mLen < matchEnd && src[ref+mLen] == src[si+mLen] {
			mLen++
		}

		di = emitSequence(dst, di, src[anchor:si], si-ref, mLen)
		si += mLen
		anchor = si
	}

	return emitLastLiterals(src, dst, anchor, di)
}

// emitSequence writes one token + literals + offset + match-length
// extension into dst at di and returns the new di.
func emitSequence(dst []byte, di int, literals []byte, offset, mLen int) int {
	litLen := len(literals)
	mCode := mLen - minMatch
	tokenPos := di
	di++
	var token byte
	if litLen >= 15 {
		token = 15 << 4
		di = emitLenExt(dst, di, litLen-15)
	} else {
		token = byte(litLen) << 4
	}
	di += copy(dst[di:], literals)
	binary.LittleEndian.PutUint16(dst[di:], uint16(offset))
	di += 2
	if mCode >= 15 {
		token |= 15
		di = emitLenExt(dst, di, mCode-15)
	} else {
		token |= byte(mCode)
	}
	dst[tokenPos] = token
	return di
}

// emitLenExt writes the 255-value length extension encoding of n.
func emitLenExt(dst []byte, di, n int) int {
	for n >= 255 {
		dst[di] = 255
		di++
		n -= 255
	}
	dst[di] = byte(n)
	return di + 1
}

// emitLastLiterals writes the final literal-only sequence covering
// src[anchor:] and returns the new di.
func emitLastLiterals(src, dst []byte, anchor, di int) int {
	lit := src[anchor:]
	litLen := len(lit)
	if litLen >= 15 {
		dst[di] = 15 << 4
		di++
		di = emitLenExt(dst, di, litLen-15)
	} else {
		dst[di] = byte(litLen) << 4
		di++
	}
	di += copy(dst[di:], lit)
	return di
}

// DecompressBlock decompresses the LZ4 block src into dst and returns the
// number of bytes written. dst must be large enough for the whole
// uncompressed payload (callers carry the uncompressed size out of band,
// as the chunk transport does). It returns ErrCorrupt on malformed input
// and ErrDstTooSmall when dst cannot hold the output.
func DecompressBlock(src, dst []byte) (int, error) {
	di, si := 0, 0
	for si < len(src) {
		token := src[si]
		si++

		// Literal run.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, si, err = readLenExt(src, si, litLen)
			if err != nil {
				return 0, err
			}
		}
		if litLen > 0 {
			if si+litLen > len(src) {
				return 0, fmt.Errorf("%w: literal run of %d overruns input", ErrCorrupt, litLen)
			}
			if di+litLen > len(dst) {
				return 0, ErrDstTooSmall
			}
			copy(dst[di:], src[si:si+litLen])
			si += litLen
			di += litLen
		}
		if si == len(src) {
			// Final sequence: literals only.
			return di, nil
		}

		// Match.
		if si+2 > len(src) {
			return 0, fmt.Errorf("%w: truncated match offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[si:]))
		si += 2
		if offset == 0 {
			return 0, fmt.Errorf("%w: zero match offset", ErrCorrupt)
		}
		if offset > di {
			return 0, fmt.Errorf("%w: match offset %d exceeds output position %d", ErrCorrupt, offset, di)
		}

		mLen := int(token & 0xf)
		if mLen == 15 {
			var err error
			mLen, si, err = readLenExt(src, si, mLen)
			if err != nil {
				return 0, err
			}
		}
		mLen += minMatch
		if di+mLen > len(dst) {
			return 0, ErrDstTooSmall
		}
		// Overlapping copies must proceed byte-wise; they are how LZ4
		// encodes runs (offset < length repeats a short period).
		if offset >= mLen {
			copy(dst[di:di+mLen], dst[di-offset:])
			di += mLen
		} else {
			for i := 0; i < mLen; i++ {
				dst[di] = dst[di-offset]
				di++
			}
		}
	}
	return di, nil
}

// readLenExt accumulates 255-value extension bytes onto base.
func readLenExt(src []byte, si, base int) (int, int, error) {
	n := base
	for {
		if si >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
		}
		b := src[si]
		si++
		n += int(b)
		if n < 0 {
			return 0, 0, fmt.Errorf("%w: length overflow", ErrCorrupt)
		}
		if b != 255 {
			return n, si, nil
		}
	}
}

// Compress is a convenience wrapper that allocates an output buffer of
// exactly the compressed size.
func Compress(src []byte) []byte {
	dst := make([]byte, CompressBound(len(src)))
	n, err := CompressBlock(src, dst)
	if err != nil {
		// Unreachable: dst is sized by CompressBound.
		panic(err)
	}
	return dst[:n]
}

// Decompress is a convenience wrapper for callers that know the
// uncompressed size.
func Decompress(src []byte, uncompressedSize int) ([]byte, error) {
	dst := make([]byte, uncompressedSize)
	n, err := DecompressBlock(src, dst)
	if err != nil {
		return nil, err
	}
	if n != uncompressedSize {
		return nil, fmt.Errorf("%w: decompressed %d bytes, expected %d", ErrCorrupt, n, uncompressedSize)
	}
	return dst, nil
}

// Ratio returns the compression ratio (uncompressed/compressed) achieved
// by compressing src, used by the workload calibration code.
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	c := Compress(src)
	if len(c) == 0 {
		return 1
	}
	return float64(len(src)) / float64(len(c))
}
