package trace

import "time"

// The tracing clock: a process-wide monotonic epoch. Cross-host chunk
// journeys need timestamps that (a) never jump backwards (NTP slews the
// wall clock mid-stream) and (b) can be compared across two processes
// once a clock offset between them is known. Nanoseconds since a fixed
// per-process epoch give (a) for free — time.Since reads Go's monotonic
// clock — and the msgq handshake's ping/pong probe supplies the offset
// for (b).
var epoch = time.Now()

// Epoch returns the process's trace epoch: the instant NowNanos counts
// from. The returned Time carries a monotonic reading, so durations
// derived from it compose with NowNanos values exactly.
func Epoch() time.Time { return epoch }

// NowNanos returns monotonic nanoseconds since the process trace epoch.
// This is the timestamp format carried in wire trace contexts and
// exchanged by the clock-offset probe.
func NowNanos() int64 { return int64(time.Since(epoch)) }
