// Package trace records simulator activity as Chrome trace-event JSON
// (load the output at chrome://tracing or ui.perfetto.dev). Machines
// opt in by attaching a Tracer; every executed pipeline operation then
// becomes a duration event on its (machine, core) track, which makes
// placement pathologies — idle domains, oversubscribed cores, remote
// stalls — directly visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one Chrome trace duration event ("ph":"X"). An event may
// additionally participate in a *flow*: a directed arrow the Perfetto UI
// draws between spans on different tracks or processes (a chunk's "send"
// span on the sender linked to its "receive" span on the receiver). A
// span with FlowOut emits the flow-start point ("ph":"s") at its start
// timestamp; a span with FlowIn emits the terminating point ("ph":"f",
// binding point "e"). Both carry the same FlowID, which the caller
// derives from stable chunk identity (stream, sequence) — never from
// insertion order — so concurrent writers produce identical ids.
type Event struct {
	Name     string  // operation label, e.g. "decompress"
	Category string  // task class
	Start    float64 // virtual seconds
	Duration float64 // virtual seconds
	Process  string  // machine name
	Track    int     // core id
	Args     map[string]any

	FlowID  uint64 // nonzero: this span participates in flow FlowID
	FlowOut bool   // span is the flow's producing end
	FlowIn  bool   // span is the flow's consuming end
}

// Tracer accumulates events. Safe for concurrent use (real-mode
// pipelines share it across workers; the simulator is single-threaded
// but pays the lock only when tracing is on).
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
}

// New returns a tracer holding at most limit events (0 = unlimited).
// The limit guards long simulations against unbounded memory.
func New(limit int) *Tracer {
	return &Tracer{limit: limit}
}

// Add records an event. Events beyond the limit are dropped — and
// counted, so a truncated trace says so instead of silently looking like
// a quiet run (see Dropped and the metadata event in WriteJSON).
func (t *Tracer) Add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded by the limit.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a snapshot in a deterministic total order. Concurrent
// Add calls append in whatever order the scheduler picks, so sorting by
// start time alone (with an unstable sort) used to leave tied events in
// run-dependent positions — and a merged two-process trace is full of
// ties (both tracks start at 0). The full tie-break chain below makes
// Events, and therefore WriteJSON, byte-stable for a given event set no
// matter how many writers raced.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return eventLess(out[i], out[j]) })
	return out
}

// eventLess is a total order over events: start time first, then every
// identity field, so no two distinct events ever compare equal.
func eventLess(a, b Event) bool {
	switch {
	case a.Start != b.Start:
		return a.Start < b.Start
	case a.Process != b.Process:
		return a.Process < b.Process
	case a.Track != b.Track:
		return a.Track < b.Track
	case a.Name != b.Name:
		return a.Name < b.Name
	case a.Category != b.Category:
		return a.Category < b.Category
	case a.Duration != b.Duration:
		return a.Duration < b.Duration
	default:
		return a.FlowID < b.FlowID
	}
}

// Merge copies every event of o (and its drop count) into t — the
// multi-process merge step when two nodes of a run traced into separate
// Tracers in one process. Cross-host merging happens upstream: the
// receiver stitches offset-corrected sender spans into its own tracer as
// it delivers chunks.
func (t *Tracer) Merge(o *Tracer) {
	if o == nil || o == t {
		return
	}
	events := o.Events()
	dropped := o.Dropped()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range events {
		if t.limit > 0 && len(t.events) >= t.limit {
			t.dropped++
			continue
		}
		t.events = append(t.events, e)
	}
	t.dropped += dropped
}

// AdjustProcess shifts the start of every recorded event of the named
// process by delta seconds — post-hoc clock-offset correction for spans
// that were recorded on a remote timeline before the offset was known.
func (t *Tracer) AdjustProcess(process string, delta float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.events {
		if t.events[i].Process == process {
			t.events[i].Start += delta
		}
	}
}

// chromeEvent is the wire format of the trace-event spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  string         `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"` // flow id ("s"/"f" events)
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// flowName labels the flow arrows in the viewer.
const flowName = "chunk"

// WriteJSON writes the events as a Chrome trace (JSON array form).
// Spans marked FlowOut/FlowIn are followed by their flow point events
// ("ph":"s" / "ph":"f", binding point "e") at the span's start timestamp
// on the same pid/tid, which is how the viewer binds the arrow to the
// enclosing slice. Flow ids come verbatim from Event.FlowID — content-
// derived, not assigned at write time — and events are emitted in the
// deterministic Events() order, so the same event set serializes
// identically regardless of Add interleaving. When the limit dropped
// events, a trailing metadata event ("trace_dropped", ph "M") carries
// the count in args.dropped, so a truncated trace is visibly truncated
// in the viewer.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+1)
	for _, e := range events {
		out = append(out, chromeEvent{
			Name: e.Name,
			Cat:  e.Category,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  e.Duration * 1e6,
			Pid:  e.Process,
			Tid:  e.Track,
			Args: e.Args,
		})
		if e.FlowID == 0 || (!e.FlowOut && !e.FlowIn) {
			continue
		}
		flow := chromeEvent{
			Name: flowName,
			Cat:  "journey",
			Ts:   e.Start * 1e6,
			Pid:  e.Process,
			Tid:  e.Track,
			ID:   fmt.Sprintf("0x%x", e.FlowID),
		}
		if e.FlowOut {
			flow.Ph = "s"
			out = append(out, flow)
		}
		if e.FlowIn {
			flow.Ph = "f"
			flow.BP = "e"
			out = append(out, flow)
		}
	}
	if d := t.Dropped(); d > 0 {
		out = append(out, chromeEvent{
			Name: "trace_dropped",
			Ph:   "M",
			Pid:  "tracer",
			Args: map[string]any{"dropped": d},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary aggregates per-(process, category) busy time — a quick text
// alternative to loading the JSON.
func (t *Tracer) Summary() string {
	busy := map[string]float64{}
	count := map[string]int{}
	for _, e := range t.Events() {
		k := e.Process + "/" + e.Category
		busy[k] += e.Duration
		count[k]++
	}
	keys := make([]string, 0, len(busy))
	for k := range busy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%-32s %8d ops %10.3fs busy\n", k, count[k], busy[k])
	}
	return out
}
