// Package trace records simulator activity as Chrome trace-event JSON
// (load the output at chrome://tracing or ui.perfetto.dev). Machines
// opt in by attaching a Tracer; every executed pipeline operation then
// becomes a duration event on its (machine, core) track, which makes
// placement pathologies — idle domains, oversubscribed cores, remote
// stalls — directly visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one Chrome trace duration event ("ph":"X").
type Event struct {
	Name     string  // operation label, e.g. "decompress"
	Category string  // task class
	Start    float64 // virtual seconds
	Duration float64 // virtual seconds
	Process  string  // machine name
	Track    int     // core id
	Args     map[string]any
}

// Tracer accumulates events. Safe for concurrent use (real-mode
// pipelines share it across workers; the simulator is single-threaded
// but pays the lock only when tracing is on).
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
}

// New returns a tracer holding at most limit events (0 = unlimited).
// The limit guards long simulations against unbounded memory.
func New(limit int) *Tracer {
	return &Tracer{limit: limit}
}

// Add records an event. Events beyond the limit are dropped — and
// counted, so a truncated trace says so instead of silently looking like
// a quiet run (see Dropped and the metadata event in WriteJSON).
func (t *Tracer) Add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded by the limit.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a snapshot sorted by start time.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is the wire format of the trace-event spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  string         `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the events as a Chrome trace (JSON array form). When
// the limit dropped events, a trailing metadata event ("trace_dropped",
// ph "M") carries the count in args.dropped, so a truncated trace is
// visibly truncated in the viewer.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, len(events), len(events)+1)
	for i, e := range events {
		out[i] = chromeEvent{
			Name: e.Name,
			Cat:  e.Category,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  e.Duration * 1e6,
			Pid:  e.Process,
			Tid:  e.Track,
			Args: e.Args,
		}
	}
	if d := t.Dropped(); d > 0 {
		out = append(out, chromeEvent{
			Name: "trace_dropped",
			Ph:   "M",
			Pid:  "tracer",
			Args: map[string]any{"dropped": d},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary aggregates per-(process, category) busy time — a quick text
// alternative to loading the JSON.
func (t *Tracer) Summary() string {
	busy := map[string]float64{}
	count := map[string]int{}
	for _, e := range t.Events() {
		k := e.Process + "/" + e.Category
		busy[k] += e.Duration
		count[k]++
	}
	keys := make([]string, 0, len(busy))
	for k := range busy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%-32s %8d ops %10.3fs busy\n", k, count[k], busy[k])
	}
	return out
}
