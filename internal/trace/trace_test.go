package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndEventsSorted(t *testing.T) {
	tr := New(0)
	tr.Add(Event{Name: "b", Start: 2, Duration: 1})
	tr.Add(Event{Name: "a", Start: 1, Duration: 1})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ev := tr.Events()
	if ev[0].Name != "a" || ev[1].Name != "b" {
		t.Fatalf("events not sorted by start: %+v", ev)
	}
}

func TestLimitDropsExcess(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Name: "e", Start: float64(i)})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (limited)", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
}

func TestNoLimitNoDrops(t *testing.T) {
	tr := New(0)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Name: "e"})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 for an unlimited tracer", tr.Dropped())
	}
}

func TestWriteJSONReportsDrops(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Add(Event{Name: "e", Start: float64(i)})
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 retained events plus the trailing metadata event.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	meta := events[2]
	if meta["name"] != "trace_dropped" || meta["ph"] != "M" {
		t.Fatalf("metadata event = %v", meta)
	}
	args, ok := meta["args"].(map[string]any)
	if !ok || args["dropped"].(float64) != 3 {
		t.Fatalf("metadata args = %v, want dropped=3", meta["args"])
	}
}

func TestWriteJSONOmitsDropMarkerWhenComplete(t *testing.T) {
	tr := New(10)
	tr.Add(Event{Name: "e"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if strings.Contains(buf.String(), "trace_dropped") {
		t.Fatalf("complete trace carries a drop marker: %s", buf.String())
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	tr := New(0)
	tr.Add(Event{
		Name: "decompress", Category: "decompress",
		Start: 0.001, Duration: 0.0005,
		Process: "lynxdtn", Track: 17,
		Args: map[string]any{"remote": true},
	})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e["ph"] != "X" || e["name"] != "decompress" || e["pid"] != "lynxdtn" {
		t.Fatalf("event = %v", e)
	}
	if e["ts"].(float64) != 1000 { // 0.001s in µs
		t.Fatalf("ts = %v, want 1000", e["ts"])
	}
	if e["dur"].(float64) != 500 {
		t.Fatalf("dur = %v, want 500", e["dur"])
	}
}

func TestSummaryAggregates(t *testing.T) {
	tr := New(0)
	tr.Add(Event{Category: "receive", Process: "gw", Duration: 1})
	tr.Add(Event{Category: "receive", Process: "gw", Duration: 2})
	tr.Add(Event{Category: "send", Process: "src", Duration: 5})
	s := tr.Summary()
	if !strings.Contains(s, "gw/receive") || !strings.Contains(s, "3.000s") {
		t.Fatalf("Summary:\n%s", s)
	}
	if !strings.Contains(s, "src/send") {
		t.Fatalf("Summary missing src/send:\n%s", s)
	}
}

func TestClockMonotonic(t *testing.T) {
	a := NowNanos()
	b := NowNanos()
	if a < 0 || b < a {
		t.Fatalf("NowNanos not monotonic: %d then %d", a, b)
	}
	if Epoch().IsZero() {
		t.Fatal("Epoch is zero")
	}
	// Epoch + NowNanos must track the monotonic clock: converting a
	// NowNanos reading back through Epoch lands within the bracket.
	n := NowNanos()
	if d := time.Since(Epoch().Add(time.Duration(n))); d < 0 || d > time.Second {
		t.Fatalf("Epoch/NowNanos disagree by %v", d)
	}
}

func TestFlowEventsEmitted(t *testing.T) {
	tr := New(0)
	tr.Add(Event{Name: "send", Process: "src", Track: 1, Start: 0.001, Duration: 0.001,
		FlowID: 0xbeef, FlowOut: true})
	tr.Add(Event{Name: "receive", Process: "gw", Track: 2, Start: 0.003, Duration: 0.001,
		FlowID: 0xbeef, FlowIn: true})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	// 2 duration events + 1 flow start + 1 flow finish.
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4:\n%s", len(events), buf.String())
	}
	var s, f map[string]any
	for _, e := range events {
		switch e["ph"] {
		case "s":
			s = e
		case "f":
			f = e
		}
	}
	if s == nil || f == nil {
		t.Fatalf("missing flow phases:\n%s", buf.String())
	}
	if s["id"] != "0xbeef" || f["id"] != "0xbeef" {
		t.Fatalf("flow ids = %v / %v, want stable 0xbeef", s["id"], f["id"])
	}
	if s["pid"] != "src" || f["pid"] != "gw" {
		t.Fatalf("flow pids = %v / %v", s["pid"], f["pid"])
	}
	if s["ts"].(float64) != 1000 || f["ts"].(float64) != 3000 {
		t.Fatalf("flow ts = %v / %v, want span starts", s["ts"], f["ts"])
	}
	if f["bp"] != "e" {
		t.Fatalf("flow finish bp = %v, want \"e\"", f["bp"])
	}
}

// TestWriteJSONDeterministicUnderConcurrentAdd is the regression test
// for nondeterministic merged traces: two writers interleave events with
// colliding start times, and WriteJSON must serialize the identical byte
// stream every run — Perfetto-stable flow/event ids and ordering.
func TestWriteJSONDeterministicUnderConcurrentAdd(t *testing.T) {
	render := func() string {
		tr := New(0)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				proc := []string{"sender", "receiver"}[w]
				for j := 0; j < 200; j++ {
					tr.Add(Event{
						Name:    "op",
						Start:   float64(j % 10), // deliberate cross-writer ties
						Process: proc,
						Track:   j % 4,
						FlowID:  uint64(w)<<32 | uint64(j),
						FlowOut: w == 0,
						FlowIn:  w == 1,
					})
				}
			}(w)
		}
		close(start)
		wg.Wait()
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d serialized differently under concurrent Add", i)
		}
	}
}

func TestMergeCombinesEventsAndDrops(t *testing.T) {
	a := New(0)
	a.Add(Event{Name: "x", Process: "sender", Start: 1})
	b := New(1)
	b.Add(Event{Name: "y", Process: "receiver", Start: 2})
	b.Add(Event{Name: "overflow", Start: 3}) // dropped by b's limit
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
	if a.Dropped() != 1 {
		t.Fatalf("merged Dropped = %d, want 1 (inherited)", a.Dropped())
	}
	ev := a.Events()
	if ev[0].Process != "sender" || ev[1].Process != "receiver" {
		t.Fatalf("merged events: %+v", ev)
	}
	a.Merge(a) // self-merge must be a no-op
	if a.Len() != 2 {
		t.Fatalf("self-merge changed Len to %d", a.Len())
	}
}

func TestMergeRespectsLimit(t *testing.T) {
	dst := New(1)
	dst.Add(Event{Name: "kept"})
	src := New(0)
	src.Add(Event{Name: "spill1"})
	src.Add(Event{Name: "spill2"})
	dst.Merge(src)
	if dst.Len() != 1 || dst.Dropped() != 2 {
		t.Fatalf("Len=%d Dropped=%d, want 1/2", dst.Len(), dst.Dropped())
	}
}

func TestAdjustProcessShiftsOnlyThatProcess(t *testing.T) {
	tr := New(0)
	tr.Add(Event{Name: "a", Process: "sender", Start: 1.0})
	tr.Add(Event{Name: "b", Process: "receiver", Start: 1.0})
	tr.AdjustProcess("sender", -0.25)
	for _, e := range tr.Events() {
		want := 1.0
		if e.Process == "sender" {
			want = 0.75
		}
		if e.Start != want {
			t.Fatalf("%s/%s Start = %v, want %v", e.Process, e.Name, e.Start, want)
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add(Event{Name: "x"})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tr.Len())
	}
}
