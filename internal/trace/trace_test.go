package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAddAndEventsSorted(t *testing.T) {
	tr := New(0)
	tr.Add(Event{Name: "b", Start: 2, Duration: 1})
	tr.Add(Event{Name: "a", Start: 1, Duration: 1})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ev := tr.Events()
	if ev[0].Name != "a" || ev[1].Name != "b" {
		t.Fatalf("events not sorted by start: %+v", ev)
	}
}

func TestLimitDropsExcess(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Name: "e", Start: float64(i)})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (limited)", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
}

func TestNoLimitNoDrops(t *testing.T) {
	tr := New(0)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Name: "e"})
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0 for an unlimited tracer", tr.Dropped())
	}
}

func TestWriteJSONReportsDrops(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Add(Event{Name: "e", Start: float64(i)})
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 retained events plus the trailing metadata event.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	meta := events[2]
	if meta["name"] != "trace_dropped" || meta["ph"] != "M" {
		t.Fatalf("metadata event = %v", meta)
	}
	args, ok := meta["args"].(map[string]any)
	if !ok || args["dropped"].(float64) != 3 {
		t.Fatalf("metadata args = %v, want dropped=3", meta["args"])
	}
}

func TestWriteJSONOmitsDropMarkerWhenComplete(t *testing.T) {
	tr := New(10)
	tr.Add(Event{Name: "e"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if strings.Contains(buf.String(), "trace_dropped") {
		t.Fatalf("complete trace carries a drop marker: %s", buf.String())
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	tr := New(0)
	tr.Add(Event{
		Name: "decompress", Category: "decompress",
		Start: 0.001, Duration: 0.0005,
		Process: "lynxdtn", Track: 17,
		Args: map[string]any{"remote": true},
	})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e["ph"] != "X" || e["name"] != "decompress" || e["pid"] != "lynxdtn" {
		t.Fatalf("event = %v", e)
	}
	if e["ts"].(float64) != 1000 { // 0.001s in µs
		t.Fatalf("ts = %v, want 1000", e["ts"])
	}
	if e["dur"].(float64) != 500 {
		t.Fatalf("dur = %v, want 500", e["dur"])
	}
}

func TestSummaryAggregates(t *testing.T) {
	tr := New(0)
	tr.Add(Event{Category: "receive", Process: "gw", Duration: 1})
	tr.Add(Event{Category: "receive", Process: "gw", Duration: 2})
	tr.Add(Event{Category: "send", Process: "src", Duration: 5})
	s := tr.Summary()
	if !strings.Contains(s, "gw/receive") || !strings.Contains(s, "3.000s") {
		t.Fatalf("Summary:\n%s", s)
	}
	if !strings.Contains(s, "src/send") {
		t.Fatalf("Summary missing src/send:\n%s", s)
	}
}

func TestConcurrentAdd(t *testing.T) {
	tr := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add(Event{Name: "x"})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tr.Len())
	}
}
