package queue

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

func TestFIFOOrder(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 8; i++ {
		if err := q.Put(i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		v, err := q.Get()
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v != i {
			t.Fatalf("Get = %d, want %d", v, i)
		}
	}
}

func TestLenAndCap(t *testing.T) {
	q := New[string](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Get()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestTryPutFullQueue(t *testing.T) {
	q := New[int](1)
	ok, err := q.TryPut(1)
	if !ok || err != nil {
		t.Fatalf("TryPut on empty = (%v, %v), want (true, nil)", ok, err)
	}
	ok, err = q.TryPut(2)
	if ok || err != nil {
		t.Fatalf("TryPut on full = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestTryGetEmptyQueue(t *testing.T) {
	q := New[int](1)
	_, ok, err := q.TryGet()
	if ok || err != nil {
		t.Fatalf("TryGet on empty = (%v, %v), want (false, nil)", ok, err)
	}
	q.Put(7)
	v, ok, err := q.TryGet()
	if !ok || err != nil || v != 7 {
		t.Fatalf("TryGet = (%d, %v, %v), want (7, true, nil)", v, ok, err)
	}
}

func TestPutBlocksUntilGet(t *testing.T) {
	q := New[int](1)
	q.Put(1)
	done := make(chan error, 1)
	go func() { done <- q.Put(2) }()
	select {
	case <-done:
		t.Fatal("Put on full queue returned before space was available")
	case <-time.After(10 * time.Millisecond):
	}
	if v, err := q.Get(); err != nil || v != 1 {
		t.Fatalf("Get = (%d, %v)", v, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Put: %v", err)
	}
	if v, err := q.Get(); err != nil || v != 2 {
		t.Fatalf("Get = (%d, %v)", v, err)
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	q := New[int](1)
	got := make(chan int, 1)
	go func() {
		v, err := q.Get()
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Get on empty queue returned before an item was available")
	case <-time.After(10 * time.Millisecond):
	}
	q.Put(42)
	if v := <-got; v != 42 {
		t.Fatalf("Get = %d, want 42", v)
	}
}

func TestCloseUnblocksPut(t *testing.T) {
	q := New[int](1)
	q.Put(1)
	done := make(chan error, 1)
	go func() { done <- q.Put(2) }()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked Put after Close = %v, want ErrClosed", err)
	}
}

func TestCloseDrainsThenErrClosed(t *testing.T) {
	q := New[int](4)
	q.Put(1)
	q.Put(2)
	q.Close()
	if v, err := q.Get(); err != nil || v != 1 {
		t.Fatalf("Get after Close = (%d, %v), want (1, nil)", v, err)
	}
	if v, err := q.Get(); err != nil || v != 2 {
		t.Fatalf("Get after Close = (%d, %v), want (2, nil)", v, err)
	}
	if _, err := q.Get(); err != ErrClosed {
		t.Fatalf("Get on drained closed queue = %v, want ErrClosed", err)
	}
	if _, _, err := q.TryGet(); err != ErrClosed {
		t.Fatalf("TryGet on drained closed queue err = %v, want ErrClosed", err)
	}
}

func TestPutAfterClose(t *testing.T) {
	q := New[int](4)
	q.Close()
	if err := q.Put(1); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := q.TryPut(1); err != ErrClosed {
		t.Fatalf("TryPut after Close err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	q := New[int](1)
	q.Close()
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed = false after Close")
	}
}

func TestStats(t *testing.T) {
	q := New[int](2)
	q.Put(1)
	q.Put(2)
	q.Get()
	s := q.Stats()
	if s.Puts != 2 || s.Gets != 1 || s.MaxDepth != 2 || s.Depth != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestStatsCountBlocks(t *testing.T) {
	q := New[int](1)
	q.Put(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Put(2)
	}()
	time.Sleep(5 * time.Millisecond)
	q.Get()
	wg.Wait()
	if s := q.Stats(); s.PutBlocks == 0 {
		t.Fatalf("PutBlocks = 0, want > 0 (stats %+v)", s)
	}
}

// TestConcurrentProducersConsumers hammers the queue with many producers
// and consumers and checks that every item is delivered exactly once.
func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers    = 8
		consumers    = 8
		perProducer  = 1000
		totalItems   = producers * perProducer
		queueCapacty = 16
	)
	q := New[int](queueCapacty)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(p*perProducer + i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int]bool, totalItems)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := q.Get()
				if err == ErrClosed {
					return
				}
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("item %d delivered twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if len(seen) != totalItems {
		t.Fatalf("delivered %d items, want %d", len(seen), totalItems)
	}
}

// TestPropertyDrainMatchesFill uses testing/quick to verify that any
// sequence of puts drains in the same order.
func TestPropertyDrainMatchesFill(t *testing.T) {
	f := func(items []uint32) bool {
		q := New[uint32](len(items) + 1)
		for _, v := range items {
			if err := q.Put(v); err != nil {
				return false
			}
		}
		q.Close()
		for _, want := range items {
			got, err := q.Get()
			if err != nil || got != want {
				return false
			}
		}
		_, err := q.Get()
		return err == ErrClosed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWraparound checks FIFO order is preserved across many
// wrap-arounds of the ring buffer for arbitrary small capacities.
func TestPropertyWraparound(t *testing.T) {
	f := func(capSeed uint8, n uint16) bool {
		capacity := int(capSeed)%7 + 1
		q := New[int](capacity)
		next := 0
		for i := 0; i < int(n)%2000; i++ {
			if err := q.Put(i); err != nil {
				return false
			}
			if q.Len() == capacity || i%3 == 0 {
				v, err := q.Get()
				if err != nil || v != next {
					return false
				}
				next++
			}
		}
		for {
			v, ok, err := q.TryGet()
			if err != nil || !ok {
				return !ok && err == nil
			}
			if v != next {
				return false
			}
			next++
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsBlockedTime(t *testing.T) {
	q := New[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}

	// A producer blocks on the full queue until we drain it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := q.Put(2); err != nil {
			t.Errorf("blocked Put: %v", err)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	<-done

	// Drain, then a consumer blocks on the empty queue.
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		if _, err := q.Get(); err != nil {
			t.Errorf("blocked Get: %v", err)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := q.Put(3); err != nil {
		t.Fatal(err)
	}
	<-done

	st := q.Stats()
	if st.PutBlocks < 1 || st.GetBlocks < 1 {
		t.Fatalf("blocks = %d/%d, want >= 1 each", st.PutBlocks, st.GetBlocks)
	}
	// Generous lower bound: the waiters slept ~50ms; scheduling noise
	// only adds to the measured wait.
	if st.PutBlocked < 30*time.Millisecond {
		t.Fatalf("PutBlocked = %v, want >= 30ms", st.PutBlocked)
	}
	if st.GetBlocked < 30*time.Millisecond {
		t.Fatalf("GetBlocked = %v, want >= 30ms", st.GetBlocked)
	}
}

func TestStatsNoBlockedTimeOnFastPath(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 3; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Get(); err != nil {
			t.Fatal(err)
		}
	}
	st := q.Stats()
	if st.PutBlocks != 0 || st.GetBlocks != 0 || st.PutBlocked != 0 || st.GetBlocked != 0 {
		t.Fatalf("uncontended queue reports blocking: %+v", st)
	}
}

// TestStatsMidBlockVisibility pins the in-progress accounting: a stall
// is visible in Stats *while* the waiter is still parked, not only
// after it wakes — which is what lets a snapshot-diff observer call a
// wedged pipeline blocked instead of idle.
func TestStatsMidBlockVisibility(t *testing.T) {
	q := New[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	go q.Put(2) // parks: queue full
	waitFor := func(cond func(Stats) bool, what string) Stats {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if st := q.Stats(); cond(st) {
				return st
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s (stats %+v)", what, q.Stats())
		return Stats{}
	}
	st := waitFor(func(st Stats) bool { return st.PutWaiters == 1 }, "a parked producer")
	time.Sleep(20 * time.Millisecond)
	st2 := q.Stats()
	if st2.PutBlocked <= st.PutBlocked {
		t.Fatalf("mid-block PutBlocked did not grow: %v then %v", st.PutBlocked, st2.PutBlocked)
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	waitFor(func(st Stats) bool { return st.PutWaiters == 0 }, "the producer to unpark")

	// Same shape for a starved consumer.
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		q.Get()
		close(got)
	}()
	st = waitFor(func(st Stats) bool { return st.GetWaiters == 1 }, "a parked consumer")
	time.Sleep(20 * time.Millisecond)
	if st2 := q.Stats(); st2.GetBlocked <= st.GetBlocked {
		t.Fatalf("mid-block GetBlocked did not grow: %v then %v", st.GetBlocked, st2.GetBlocked)
	}
	if err := q.Put(3); err != nil {
		t.Fatal(err)
	}
	<-got
	if st := q.Stats(); st.GetWaiters != 0 || st.PutWaiters != 0 {
		t.Fatalf("waiters linger: %+v", st)
	}
}
