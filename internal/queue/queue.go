// Package queue provides bounded, thread-safe queues used between the
// stages of the streaming pipeline (the "thread-safe queue" of the paper's
// Figure 2). The queues support multiple concurrent producers and
// consumers, blocking and non-blocking operations, close semantics with
// drain, and occupancy statistics used by the metrics subsystem.
package queue

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a queue that has been closed and,
// for consumers, fully drained.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded multi-producer multi-consumer FIFO queue.
//
// A Queue must be created with New; the zero value is not usable. All
// methods are safe for concurrent use. After Close, Put fails immediately
// with ErrClosed while Get continues to succeed until the queue is empty,
// so in-flight items are never lost.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf    []T
	head   int
	count  int
	closed bool

	// statistics, guarded by mu
	puts       uint64
	gets       uint64
	maxDepth   int
	putBlocks  uint64
	getBlocks  uint64
	putBlocked time.Duration
	getBlocked time.Duration

	// In-progress wait accounting: how many callers are blocked right
	// now, and the sum of their block-start times (unix nanos). A
	// Stats() taken mid-wait charges each waiter now-start, so
	// blocked-time gauges move while a stall is happening — the live
	// signal bottleneck attribution needs — instead of only after the
	// waiter finally unblocks.
	putWaiters      int
	getWaiters      int
	putWaitStartSum int64
	getWaitStartSum int64
}

// New returns an empty queue with the given capacity. Capacity must be at
// least 1; New panics otherwise, since an unbuffered MPMC queue cannot
// provide the pipelining the runtime depends on.
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		panic("queue: capacity must be >= 1")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the current number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Put appends v, blocking while the queue is full. It returns ErrClosed if
// the queue is closed before v could be enqueued.
func (q *Queue[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Blocked-time accounting stays off the fast path: the clock is read
	// only when this call actually waits.
	if q.count == len(q.buf) && !q.closed {
		blockedAt := time.Now()
		q.putBlocks++
		q.putWaiters++
		q.putWaitStartSum += blockedAt.UnixNano()
		for q.count == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
		q.putWaiters--
		q.putWaitStartSum -= blockedAt.UnixNano()
		q.putBlocked += time.Since(blockedAt)
	}
	if q.closed {
		return ErrClosed
	}
	q.enqueueLocked(v)
	return nil
}

// TryPut appends v without blocking. It reports whether the item was
// enqueued; it returns ErrClosed if the queue is closed, nil otherwise.
func (q *Queue[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.count == len(q.buf) {
		return false, nil
	}
	q.enqueueLocked(v)
	return true, nil
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. It returns ErrClosed once the queue is closed and drained.
func (q *Queue[T]) Get() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 && !q.closed {
		blockedAt := time.Now()
		q.getBlocks++
		q.getWaiters++
		q.getWaitStartSum += blockedAt.UnixNano()
		for q.count == 0 && !q.closed {
			q.notEmpty.Wait()
		}
		q.getWaiters--
		q.getWaitStartSum -= blockedAt.UnixNano()
		q.getBlocked += time.Since(blockedAt)
	}
	var zero T
	if q.count == 0 {
		return zero, ErrClosed
	}
	return q.dequeueLocked(), nil
}

// TryGet removes and returns the oldest item without blocking. The boolean
// reports whether an item was returned; err is ErrClosed when the queue is
// closed and drained.
func (q *Queue[T]) TryGet() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.count == 0 {
		if q.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	return q.dequeueLocked(), true, nil
}

// Close marks the queue closed. Pending and future Puts fail with
// ErrClosed; Gets drain remaining items and then fail with ErrClosed.
// Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Stats is a snapshot of queue activity counters. The blocked durations
// include waits still in progress at snapshot time, so a stalled
// pipeline's backpressure is visible while it is stalling.
type Stats struct {
	Puts       uint64        // total successful enqueues
	Gets       uint64        // total successful dequeues
	MaxDepth   int           // high-water mark of occupancy
	PutBlocks  uint64        // Put calls that had to wait (backpressure events)
	GetBlocks  uint64        // Get calls that had to wait (starvation events)
	PutBlocked time.Duration // cumulative time Put callers spent waiting (incl. in progress)
	GetBlocked time.Duration // cumulative time Get callers spent waiting (incl. in progress)
	PutWaiters int           // Put callers blocked right now
	GetWaiters int           // Get callers blocked right now
	Depth      int           // current occupancy
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Puts:       q.puts,
		Gets:       q.gets,
		MaxDepth:   q.maxDepth,
		PutBlocks:  q.putBlocks,
		GetBlocks:  q.getBlocks,
		PutBlocked: q.putBlocked,
		GetBlocked: q.getBlocked,
		PutWaiters: q.putWaiters,
		GetWaiters: q.getWaiters,
		Depth:      q.count,
	}
	// The clock is read only when someone is actually waiting, keeping
	// the idle-scrape path as cheap as before.
	if q.putWaiters > 0 || q.getWaiters > 0 {
		now := time.Now().UnixNano()
		if q.putWaiters > 0 {
			st.PutBlocked += time.Duration(now*int64(q.putWaiters) - q.putWaitStartSum)
		}
		if q.getWaiters > 0 {
			st.GetBlocked += time.Duration(now*int64(q.getWaiters) - q.getWaitStartSum)
		}
	}
	return st
}

func (q *Queue[T]) enqueueLocked(v T) {
	tail := (q.head + q.count) % len(q.buf)
	q.buf[tail] = v
	q.count++
	q.puts++
	if q.count > q.maxDepth {
		q.maxDepth = q.count
	}
	q.notEmpty.Signal()
}

func (q *Queue[T]) dequeueLocked() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.gets++
	q.notFull.Signal()
	return v
}
