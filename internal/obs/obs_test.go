package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"numastream/internal/metrics"
)

// cumBuckets builds a cumulative populated-buckets slice from (le,
// count-at-or-below) pairs, the shape metrics.HistogramSnapshot emits.
func cumBuckets(pairs ...int64) []metrics.HistogramBucket {
	var out []metrics.HistogramBucket
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, metrics.HistogramBucket{Le: pairs[i], Count: pairs[i+1]})
	}
	return out
}

func TestHistDiffWindowedQuantiles(t *testing.T) {
	prev := HistState{Count: 4, Sum: 40, Buckets: cumBuckets(7, 2, 15, 4)}
	cur := HistState{Count: 14, Sum: 400, Buckets: cumBuckets(7, 2, 15, 8, 31, 14)}
	bars, n, sum := histDiff(prev, cur)
	if n != 10 || sum != 360 {
		t.Fatalf("window count/sum = %d/%d, want 10/360", n, sum)
	}
	// The window saw 4 obs in (7, 15] and 6 in (15, 31]; prev's 2 below 7
	// cancel out entirely.
	if len(bars) != 2 || bars[0].n != 4 || bars[1].n != 6 {
		t.Fatalf("bars = %+v", bars)
	}
	p50 := barsQuantile(bars, n, 0.50)
	if p50 < 16 || p50 > 31 {
		t.Fatalf("p50 = %v, want within the (15, 31] bucket", p50)
	}
	if q := barsQuantile(bars, n, 1.0); q != 31 {
		t.Fatalf("p100 = %v, want 31", q)
	}
	if q := barsQuantile(nil, 0, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestCaptureScrapesRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Meter("compress").Add(1000)
	reg.Counter("reroutes").Add(3)
	reg.Gauge("sendq_depth").Set(7)
	reg.Histogram("compress_latency_ns").Observe(500)
	s := Capture(reg, 2.5)
	if s.T != 2.5 {
		t.Fatalf("T = %v", s.T)
	}
	if s.Meters["compress"].Bytes != 1000 || s.Meters["compress"].Items != 1 {
		t.Fatalf("meter state = %+v", s.Meters["compress"])
	}
	if s.Counters["reroutes"] != 3 || s.Gauges["sendq_depth"] != 7 {
		t.Fatalf("counter/gauge missing: %+v %+v", s.Counters, s.Gauges)
	}
	if h := s.Hists["compress_latency_ns"]; h.Count != 1 || h.Sum != 500 {
		t.Fatalf("hist state = %+v", h)
	}
	if got := Capture(nil, 1).T; got != 1 {
		t.Fatalf("nil-registry capture T = %v", got)
	}
}

func TestVerdictIdle(t *testing.T) {
	w := Diff(Snapshot{T: 0}, Snapshot{T: 1}, nil)
	if w.Verdict != VerdictIdle {
		t.Fatalf("verdict = %s, want idle", w.Verdict)
	}
}

func TestVerdictChurnOutranksEverything(t *testing.T) {
	prev := Snapshot{T: 0, Counters: map[string]int64{"reroutes": 0}}
	cur := Snapshot{T: 1,
		Counters: map[string]int64{"reroutes": 5},
		Gauges: map[string]float64{
			"sendq_depth": 10, "sendq_put_blocked_secs": 0.9, "sendq_get_blocked_secs": 0,
		},
		Meters: map[string]MeterState{"send": {Bytes: 1 << 30}},
	}
	w := Diff(prev, cur, nil)
	if w.Verdict != VerdictChurnDegraded {
		t.Fatalf("verdict = %s, want churn-degraded (evidence %v)", w.Verdict, w.Evidence)
	}
	if w.Churn.Reroutes != 5 || w.Churn.Total != 5 {
		t.Fatalf("churn window = %+v", w.Churn)
	}
}

func TestVerdictPoolStarved(t *testing.T) {
	prev := Snapshot{T: 0, Gauges: map[string]float64{"bufpool_hits": 0, "bufpool_misses": 0, "bufpool_steals": 0}}
	cur := Snapshot{T: 1,
		Gauges: map[string]float64{"bufpool_hits": 10, "bufpool_misses": 20, "bufpool_steals": 10},
		Meters: map[string]MeterState{"compress": {Bytes: 1 << 20}},
	}
	w := Diff(prev, cur, nil)
	if w.Verdict != VerdictPoolStarved {
		t.Fatalf("verdict = %s, want pool-starved (evidence %v)", w.Verdict, w.Evidence)
	}
	if w.Pool.Gets != 40 || w.Pool.MissShare != 0.75 {
		t.Fatalf("pool window = %+v", w.Pool)
	}
}

// queueGauges builds the three per-queue series for one queue.
func queueGauges(dst map[string]float64, q string, depth, putBlocked, getBlocked float64) {
	dst[q+"_depth"] = depth
	dst[q+"_put_blocked_secs"] = putBlocked
	dst[q+"_get_blocked_secs"] = getBlocked
}

func TestVerdictBackpressureWalkPicksDownstreamMost(t *testing.T) {
	mk := func(comp, send, dec float64) Window {
		prev := Snapshot{T: 0, Gauges: map[string]float64{}}
		queueGauges(prev.Gauges, "compq", 0, 0, 0)
		queueGauges(prev.Gauges, "sendq", 0, 0, 0)
		queueGauges(prev.Gauges, "decq", 0, 0, 0)
		cur := Snapshot{T: 1, Gauges: map[string]float64{},
			Meters: map[string]MeterState{"send": {Bytes: 1 << 30}}}
		queueGauges(cur.Gauges, "compq", 4, comp, 0)
		queueGauges(cur.Gauges, "sendq", 4, send, 0)
		queueGauges(cur.Gauges, "decq", 4, dec, 0)
		return Diff(prev, cur, nil)
	}
	if w := mk(0.9, 0, 0); w.Verdict != VerdictCompressBound {
		t.Fatalf("compq blocked: verdict = %s (evidence %v)", w.Verdict, w.Evidence)
	}
	if w := mk(0.9, 0.9, 0); w.Verdict != VerdictWireBound {
		t.Fatalf("sendq downstream of compq: verdict = %s", w.Verdict)
	}
	if w := mk(0.9, 0.9, 0.9); w.Verdict != VerdictConsumerBound {
		t.Fatalf("decq most downstream: verdict = %s", w.Verdict)
	}
	// Below the floor nothing is "blocked"; the deepest-queue fallback
	// names the consumer of the deepest queue instead.
	if w := mk(0.1, 0.1, 0.1); w.Verdict == VerdictChurnDegraded || w.Verdict == VerdictPoolStarved {
		t.Fatalf("sub-floor shares escalated to %s", w.Verdict)
	}
}

func TestVerdictBusiestStageFallback(t *testing.T) {
	prev := Snapshot{T: 0,
		Meters: map[string]MeterState{"compress": {}},
		Hists:  map[string]HistState{"compress_latency_ns": {}},
	}
	cur := Snapshot{T: 1,
		Meters: map[string]MeterState{"compress": {Bytes: 1 << 28, Items: 10}},
		Hists: map[string]HistState{"compress_latency_ns": {
			Count: 10, Sum: int64(800 * time.Millisecond),
			Buckets: cumBuckets(int64(1<<27)-1, 10),
		}},
	}
	w := Diff(prev, cur, map[string]int{"compress": 1})
	if w.Verdict != VerdictCompressBound {
		t.Fatalf("verdict = %s (evidence %v)", w.Verdict, w.Evidence)
	}
	st := w.Stages[0]
	if st.Busy < 0.79 || st.Busy > 0.81 {
		t.Fatalf("busy = %v, want ~0.8", st.Busy)
	}
	if st.Util < 0.79 || st.Util > 0.81 {
		t.Fatalf("util = %v, want ~0.8 with 1 worker", st.Util)
	}
	if st.LatP99Ms <= 0 {
		t.Fatalf("windowed latency quantile missing: %+v", st)
	}
}

func TestStreamHealthScoreboard(t *testing.T) {
	prev := Snapshot{T: 0, Meters: map[string]MeterState{"delivered_stream_3": {}}}
	cur := Snapshot{T: 1,
		Meters: map[string]MeterState{
			"delivered_stream_3":     {Bytes: 1e9 / 8, Items: 12},
			"delivered_stream_other": {Bytes: 500, Items: 1},
		},
		Counters: map[string]int64{
			"dup_drops_stream_3": 2,
			"reroutes_stream_3":  1,
		},
		Gauges: map[string]float64{"ledger_holes_stream_3": 4},
		Hists: map[string]HistState{"chunk_e2e_stream_3_ns": {
			Count: 12, Sum: 12e6, Buckets: cumBuckets(int64(1<<20)-1, 12),
		}},
	}
	w := Diff(prev, cur, nil)
	if len(w.Streams) != 2 {
		t.Fatalf("streams = %+v", w.Streams)
	}
	s3 := w.Streams[0]
	if s3.Stream != "3" || w.Streams[1].Stream != "other" {
		t.Fatalf("order = %s, %s; want 3, other", w.Streams[0].Stream, w.Streams[1].Stream)
	}
	if s3.Gbps < 0.99 || s3.Gbps > 1.01 {
		t.Fatalf("gbps = %v, want ~1", s3.Gbps)
	}
	if s3.Chunks != 12 || s3.Holes != 4 || s3.Dups != 2 || s3.Reroutes != 1 {
		t.Fatalf("row = %+v", s3)
	}
	if s3.E2EP50Ms <= 0 {
		t.Fatalf("e2e quantile missing: %+v", s3)
	}
}

// TestScoreboardCapKeepsUnhealthyAndSlowest: LimitStreams must never
// drop an unhealthy row, fill the remainder with the slowest healthy
// streams, and account for what it dropped.
func TestScoreboardCapKeepsUnhealthyAndSlowest(t *testing.T) {
	w := Window{}
	for i := 0; i < 20; i++ {
		sh := StreamHealth{
			Stream: fmt.Sprintf("%d", i),
			Gbps:   float64(i), // stream 0 slowest, 19 fastest
		}
		if i == 17 {
			sh.Holes = 3 // fast but unhealthy: must survive the cap
		}
		if i == 19 {
			sh.Dups = 1
		}
		w.Streams = append(w.Streams, sh)
	}
	w.LimitStreams(5)
	if w.StreamsTotal != 20 || w.StreamsOmitted != 15 {
		t.Fatalf("total/omitted = %d/%d, want 20/15", w.StreamsTotal, w.StreamsOmitted)
	}
	if len(w.Streams) != 5 {
		t.Fatalf("kept %d rows, want 5", len(w.Streams))
	}
	kept := map[string]bool{}
	for _, sh := range w.Streams {
		kept[sh.Stream] = true
	}
	for _, want := range []string{"17", "19", "0", "1", "2"} {
		if !kept[want] {
			t.Fatalf("stream %s missing from capped scoreboard %v", want, w.Streams)
		}
	}
	// Rows come back in scoreboard order, not triage order.
	for i := 1; i < len(w.Streams); i++ {
		if !streamLabelLess(w.Streams[i-1].Stream, w.Streams[i].Stream) {
			t.Fatalf("capped rows out of order: %v", w.Streams)
		}
	}

	// Under the cap: totals recorded, nothing dropped.
	small := Window{Streams: []StreamHealth{{Stream: "1"}, {Stream: "other"}}}
	small.LimitStreams(5)
	if small.StreamsTotal != 2 || small.StreamsOmitted != 0 || len(small.Streams) != 2 {
		t.Fatalf("under-cap window mangled: %+v", small)
	}
}

// TestEngineScoreboardMaxFlowsThroughObserve: the engine applies the
// configured cap to every window it produces.
func TestEngineScoreboardMaxFlowsThroughObserve(t *testing.T) {
	e := NewEngine(nil, Options{ScoreboardMax: 2})
	mk := func(t float64, scale int64) Snapshot {
		m := map[string]MeterState{}
		for i := 0; i < 6; i++ {
			m[fmt.Sprintf("delivered_stream_%d", i)] = MeterState{Bytes: scale * int64(i+1), Items: scale}
		}
		return Snapshot{T: t, Meters: m}
	}
	e.Observe(mk(0, 0))
	w := e.Observe(mk(1, 1000))
	if w == nil {
		t.Fatal("no window")
	}
	if len(w.Streams) != 2 || w.StreamsTotal != 6 || w.StreamsOmitted != 4 {
		t.Fatalf("rows %d total %d omitted %d, want 2/6/4", len(w.Streams), w.StreamsTotal, w.StreamsOmitted)
	}
	// Unlimited: negative max records the total only.
	e2 := NewEngine(nil, Options{ScoreboardMax: -1})
	e2.Observe(mk(0, 0))
	w2 := e2.Observe(mk(1, 1000))
	if len(w2.Streams) != 6 || w2.StreamsTotal != 6 || w2.StreamsOmitted != 0 {
		t.Fatalf("unlimited scoreboard capped: %d rows", len(w2.Streams))
	}
}

func TestEngineRegimesAndRings(t *testing.T) {
	e := NewEngine(nil, Options{WindowCap: 4, RegimeCap: 2})
	if w := e.Observe(Snapshot{T: 0}); w != nil {
		t.Fatalf("first snapshot produced a window")
	}
	churn := int64(0)
	for i := 1; i <= 8; i++ {
		// Alternate churny and quiet windows: every snapshot flips the
		// verdict, so each window appends a regime transition.
		if i%2 == 1 {
			churn++
		}
		e.Observe(Snapshot{T: float64(i), Counters: map[string]int64{"reroutes": churn}})
	}
	if got := len(e.Windows()); got != 4 {
		t.Fatalf("window ring = %d, want cap 4", got)
	}
	if got := len(e.Regimes()); got != 2 {
		t.Fatalf("regime ring = %d, want cap 2", got)
	}
	if v := e.Verdict(); v != VerdictIdle {
		t.Fatalf("final verdict = %s, want idle (last window quiet)", v)
	}

	var buf bytes.Buffer
	if err := WriteRegimesJSONL(&buf, e.Regimes()); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r Regime
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if r.From == r.To {
			t.Fatalf("non-transition logged: %+v", r)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("JSONL lines = %d", lines)
	}
}

func TestEngineStatus(t *testing.T) {
	e := NewEngine(nil, Options{Node: "n1"})
	e.Observe(Snapshot{T: 0})
	e.Observe(Snapshot{T: 1, Meters: map[string]MeterState{"delivered_stream_7": {Bytes: 100, Items: 1}}})
	st := e.Status(true)
	if st.Node != "n1" || st.Window == nil || st.Windows != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Streams) != 1 || st.Streams[0].Stream != "7" {
		t.Fatalf("scoreboard = %+v", st.Streams)
	}
	if len(st.Window.Streams) != 0 {
		t.Fatalf("scoreboard duplicated inside window")
	}
	if len(e.Status(false).Streams) != 0 {
		t.Fatalf("streams included without ?streams=1")
	}
	var text bytes.Buffer
	st.WriteText(&text)
	if !strings.Contains(text.String(), "verdict=") || !strings.Contains(text.String(), "stream 7") {
		t.Fatalf("text status:\n%s", text.String())
	}
}

func TestEngineStartStopTicks(t *testing.T) {
	reg := metrics.NewRegistry()
	m := reg.Meter("compress")
	e := NewEngine(reg, Options{Interval: 2 * time.Millisecond})
	e.Start()
	m.Add(4096)
	time.Sleep(20 * time.Millisecond)
	e.Stop()
	e.Stop() // idempotent
	if len(e.Windows()) == 0 {
		t.Fatalf("no windows after Start/Stop")
	}
}

func TestReportShapeAndDominant(t *testing.T) {
	windows := []Window{
		{T0: 0, T1: 1, Dur: 1, Verdict: VerdictCompressBound, Evidence: []string{"e1"}},
		{T0: 1, T1: 2, Dur: 1, Verdict: VerdictWireBound},
		{T0: 2, T1: 4, Dur: 2, Verdict: VerdictWireBound},
	}
	regimes := []Regime{{T: 1, From: VerdictCompressBound, To: VerdictWireBound}}
	rep := BuildReport("n1", windows, regimes, 3)
	if rep.Dominant != VerdictWireBound {
		t.Fatalf("dominant = %s", rep.Dominant)
	}
	if rep.Shares["wire-bound"] != 0.75 || rep.Shares["compress-bound"] != 0.25 {
		t.Fatalf("shares = %+v", rep.Shares)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	js := string(data)
	// The report contract the Makefile drill asserts: exactly one "t0"
	// and one "verdict" key per window, and a top-level "dominant".
	if got := strings.Count(js, `"t0":`); got != len(windows) {
		t.Fatalf(`"t0": count = %d, want %d in %s`, got, len(windows), js)
	}
	if got := strings.Count(js, `"verdict":`); got != len(windows) {
		t.Fatalf(`"verdict": count = %d, want %d`, got, len(windows))
	}
	if !strings.Contains(js, `"dominant":"wire-bound"`) {
		t.Fatalf("dominant key missing: %s", js)
	}

	md := rep.Markdown()
	for _, want := range []string{"wire-bound", "| t0 |", "Regime transitions", "3 early windows dropped"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}

	if rep := BuildReport("", nil, nil, 0); rep.Dominant != VerdictIdle {
		t.Fatalf("empty report dominant = %s", rep.Dominant)
	}
}

func TestWriteReportFile(t *testing.T) {
	rep := BuildReport("n", []Window{{T0: 0, T1: 1, Dur: 1, Verdict: VerdictIdle}}, nil, 0)
	jsonPath := t.TempDir() + "/r.json"
	mdPath := t.TempDir() + "/r.md"
	if err := WriteReportFile(jsonPath, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportFile(mdPath, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report JSON round-trip: %v", err)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(md), "# Run self-diagnosis") {
		t.Fatalf("markdown report:\n%s", md)
	}
}
