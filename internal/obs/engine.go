package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"numastream/internal/metrics"
)

// Options configures an Engine.
type Options struct {
	// Interval between automatic snapshots once Start is called.
	// <= 0 means DefaultInterval. Irrelevant for Observe-only use
	// (simulations feed snapshots by hand).
	Interval time.Duration
	// WindowCap bounds the in-memory window ring; <= 0 means
	// DefaultWindowCap. Old windows fall off the front (the drop count
	// is retained, so reports state what they no longer show).
	WindowCap int
	// RegimeCap bounds the regime-transition log; <= 0 means
	// DefaultRegimeCap.
	RegimeCap int
	// Workers maps stage name → configured worker count, enabling
	// per-stage utilization. Optional.
	Workers map[string]int
	// Node labels this engine's reports (hostname, role, drill name).
	Node string
	// ScoreboardMax bounds the per-stream health rows retained in each
	// window (Window.LimitStreams): 0 means DefaultScoreboardMax,
	// negative means unlimited. At gateway scale the full scoreboard is
	// the status payload's bulk; the cap keeps every unhealthy stream
	// and the slowest healthy ones, with the rest counted in
	// StreamsOmitted.
	ScoreboardMax int
	// OnWindow, when non-nil, is called with every completed window
	// after it is folded into the ring — the adaptive placement
	// controller's subscription point. It runs on the observing
	// goroutine, outside the engine's lock, so the callback may call
	// back into the engine (e.g. SetWorkers after resizing a pool).
	OnWindow func(Window)
}

// Engine defaults.
const (
	DefaultInterval      = 500 * time.Millisecond
	DefaultWindowCap     = 240 // 2 minutes of history at the default interval
	DefaultRegimeCap     = 256
	DefaultScoreboardMax = 64
)

// Registry counters the engine maintains about itself: windows and
// regime transitions dropped off the bounded rings. Exposed on /metrics
// (numastream_obs_window_drops_total / numastream_obs_regime_drops_total)
// so a starved engine — scraped slower than it ticks — is visible from
// outside the process, not only in its own report.
const (
	CtrWindowDrops = "obs_window_drops"
	CtrRegimeDrops = "obs_regime_drops"
)

// Regime is one verdict transition: at T seconds on the run's clock the
// pipeline stopped being From-bound and became To-bound.
type Regime struct {
	T        float64  `json:"t"`
	From     Verdict  `json:"from"`
	To       Verdict  `json:"to"`
	Evidence []string `json:"evidence,omitempty"`
}

// Engine is the snapshot-diff observer: it captures a registry
// periodically (or accepts snapshots by hand via Observe), turns
// consecutive pairs into Windows, and tracks the verdict regime. All
// methods are safe for concurrent use; none touch the pipeline's hot
// path — a capture is a scrape of the registry's atomics.
type Engine struct {
	reg   *metrics.Registry
	opts  Options
	start time.Time

	mu             sync.Mutex
	prev           Snapshot
	havePrev       bool
	windows        []Window
	windowsDropped int64
	regimes        []Regime
	regimesDropped int64
	verdict        Verdict

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewEngine builds an engine over reg. reg may be nil for Observe-only
// use, where the caller synthesizes snapshots (the simulation path).
func NewEngine(reg *metrics.Registry, opts Options) *Engine {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.WindowCap <= 0 {
		opts.WindowCap = DefaultWindowCap
	}
	if opts.RegimeCap <= 0 {
		opts.RegimeCap = DefaultRegimeCap
	}
	if opts.ScoreboardMax == 0 {
		opts.ScoreboardMax = DefaultScoreboardMax
	}
	return &Engine{
		reg:     reg,
		opts:    opts,
		start:   time.Now(),
		verdict: VerdictIdle,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the periodic capture goroutine. Stop flushes a final
// window and waits for it to exit.
func (e *Engine) Start() {
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Tick()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop halts the capture goroutine (idempotent) and takes one final
// snapshot so the tail of the run is windowed.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		close(e.stop)
		<-e.done
		e.Tick()
	})
}

// Tick captures the registry now, stamped with wall seconds since the
// engine was built, and observes it. Safe to call by hand between (or
// instead of) ticker firings.
func (e *Engine) Tick() *Window {
	return e.Observe(Capture(e.reg, time.Since(e.start).Seconds()))
}

// Observe folds one snapshot in. The first snapshot seeds the diff base
// and returns nil; every later one produces a Window (also returned),
// appends it to the ring, and logs a regime transition if the verdict
// changed. Snapshots must arrive in clock order.
func (e *Engine) Observe(s Snapshot) *Window {
	w := e.observe(s)
	if w != nil && e.opts.OnWindow != nil {
		e.opts.OnWindow(*w)
	}
	return w
}

func (e *Engine) observe(s Snapshot) *Window {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.havePrev {
		e.prev, e.havePrev = s, true
		return nil
	}
	w := Diff(e.prev, s, e.opts.Workers)
	w.LimitStreams(e.opts.ScoreboardMax)
	e.prev = s
	e.windows = append(e.windows, w)
	if over := len(e.windows) - e.opts.WindowCap; over > 0 {
		e.windows = append(e.windows[:0], e.windows[over:]...)
		e.windowsDropped += int64(over)
		if e.reg != nil {
			e.reg.Counter(CtrWindowDrops).Add(int64(over))
		}
	}
	if w.Verdict != e.verdict {
		e.regimes = append(e.regimes, Regime{T: w.T1, From: e.verdict, To: w.Verdict, Evidence: w.Evidence})
		if over := len(e.regimes) - e.opts.RegimeCap; over > 0 {
			e.regimes = append(e.regimes[:0], e.regimes[over:]...)
			e.regimesDropped += int64(over)
			if e.reg != nil {
				e.reg.Counter(CtrRegimeDrops).Add(int64(over))
			}
		}
		e.verdict = w.Verdict
	}
	return &w
}

// SetWorkers updates one stage's configured worker count — the
// utilization denominator Diff divides busy-seconds by. The adaptive
// controller calls it after growing or shrinking a pool so later
// windows report utilization against the new size. Copy-on-write: the
// map handed to Options is never mutated.
func (e *Engine) SetWorkers(stage string, n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := make(map[string]int, len(e.opts.Workers)+1)
	for k, v := range e.opts.Workers {
		m[k] = v
	}
	m[stage] = n
	e.opts.Workers = m
}

// Verdict returns the current regime's verdict.
func (e *Engine) Verdict() Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.verdict
}

// Windows returns a copy of the retained window ring, oldest first.
func (e *Engine) Windows() []Window {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Window(nil), e.windows...)
}

// Regimes returns a copy of the retained regime transitions, oldest
// first.
func (e *Engine) Regimes() []Regime {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Regime(nil), e.regimes...)
}

// Status is the live self-diagnosis served by /status: the current
// verdict with its evidence, the latest window's signals, and the
// regime history. Streams is populated only on request (it is the
// scoreboard's bulk).
type Status struct {
	Node     string         `json:"node,omitempty"`
	T        float64        `json:"t"`
	Verdict  Verdict        `json:"verdict"`
	Evidence []string       `json:"evidence,omitempty"`
	Window   *Window        `json:"window,omitempty"`
	Regimes  []Regime       `json:"regimes,omitempty"`
	Windows  int            `json:"windows"`
	Dropped  int64          `json:"windows_dropped,omitempty"`
	Streams  []StreamHealth `json:"streams,omitempty"`
}

// Status assembles the live view. withStreams includes the per-stream
// health scoreboard from the latest window.
func (e *Engine) Status(withStreams bool) Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{
		Node:    e.opts.Node,
		Verdict: e.verdict,
		Windows: len(e.windows),
		Dropped: e.windowsDropped,
		Regimes: append([]Regime(nil), e.regimes...),
	}
	if n := len(e.windows); n > 0 {
		w := e.windows[n-1]
		st.T = w.T1
		st.Evidence = append([]string(nil), w.Evidence...)
		if withStreams {
			st.Streams = append([]StreamHealth(nil), w.Streams...)
		}
		w.Streams = nil // scoreboard rides the top-level field
		st.Window = &w
	} else if e.havePrev {
		st.T = e.prev.T
	}
	return st
}

// WriteText renders the status as a terminal-friendly summary.
func (s Status) WriteText(w io.Writer) {
	if s.Node != "" {
		fmt.Fprintf(w, "node: %s\n", s.Node)
	}
	fmt.Fprintf(w, "t=%.2fs verdict=%s\n", s.T, s.Verdict)
	for _, ev := range s.Evidence {
		fmt.Fprintf(w, "  evidence: %s\n", ev)
	}
	if s.Window != nil {
		fmt.Fprintf(w, "window [%.2fs, %.2fs): %d bytes\n", s.Window.T0, s.Window.T1, s.Window.Bytes)
		for _, st := range s.Window.Stages {
			fmt.Fprintf(w, "  stage %-10s %7.2f Gbps  busy %.2f", st.Stage, st.Gbps, st.Busy)
			if st.Util > 0 {
				fmt.Fprintf(w, " (util %.0f%%)", st.Util*100)
			}
			if st.LatP99Ms > 0 {
				fmt.Fprintf(w, "  p50/p99 %.2f/%.2f ms", st.LatP50Ms, st.LatP99Ms)
			}
			fmt.Fprintln(w)
		}
		for _, q := range s.Window.Queues {
			fmt.Fprintf(w, "  queue %-10s depth %4.0f  put-blocked %.2f s/s  get-blocked %.2f s/s\n",
				q.Queue, q.Depth, q.PutBlockedShare, q.GetBlockedShare)
		}
		if s.Window.Pool.Gets > 0 {
			fmt.Fprintf(w, "  pool  gets %d  miss %.0f%%  steal %.0f%%\n",
				s.Window.Pool.Gets, s.Window.Pool.MissShare*100, s.Window.Pool.StealShare*100)
		}
		if s.Window.Churn.Total > 0 {
			fmt.Fprintf(w, "  churn %d events\n", s.Window.Churn.Total)
		}
	}
	for _, sh := range s.Streams {
		fmt.Fprintf(w, "stream %-6s %7.2f Gbps  chunks %d", sh.Stream, sh.Gbps, sh.Chunks)
		if sh.E2EP99Ms > 0 {
			fmt.Fprintf(w, "  e2e p50/p99 %.2f/%.2f ms", sh.E2EP50Ms, sh.E2EP99Ms)
		}
		if sh.Holes > 0 || sh.Dups > 0 || sh.Reroutes > 0 || sh.Failovers > 0 {
			fmt.Fprintf(w, "  holes %d dups %d reroutes %d failovers %d",
				sh.Holes, sh.Dups, sh.Reroutes, sh.Failovers)
		}
		fmt.Fprintln(w)
	}
	if s.Window != nil && s.Window.StreamsOmitted > 0 {
		fmt.Fprintf(w, "  (+%d healthy streams past the scoreboard cap)\n", s.Window.StreamsOmitted)
	}
	if len(s.Regimes) > 0 {
		fmt.Fprintln(w, "regimes:")
		for _, r := range s.Regimes {
			fmt.Fprintf(w, "  t=%.2fs %s -> %s\n", r.T, r.From, r.To)
		}
	}
}

// WriteRegimesJSONL renders regime transitions one JSON object per
// line — the bounded event-log format tools can tail.
func WriteRegimesJSONL(w io.Writer, regimes []Regime) error {
	enc := json.NewEncoder(w)
	for _, r := range regimes {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
