package obs_test

// Acceptance drills for the self-diagnosis engine: starve a known stage
// and check the verdict names it. These live in an external test
// package because they drive the real pipeline and the simulation
// harnesses, which sit above internal/obs in the import graph.

import (
	"sync"
	"testing"

	"numastream/internal/experiments"
	"numastream/internal/faults"
	"numastream/internal/metrics"
	"numastream/internal/numa"
	"numastream/internal/obs"
	"numastream/internal/pipeline"
	"numastream/internal/runtime"
)

// TestCompressStarvedVerdict runs a real loopback stream with a single
// CodecHC compression worker behind a tiny queue — compression is the
// engineered bottleneck — and checks the window covering the run says
// compress-bound.
func TestCompressStarvedVerdict(t *testing.T) {
	reg := metrics.NewRegistry()
	eng := obs.NewEngine(reg, obs.Options{Workers: map[string]int{"compress": 1, "send": 3}})
	eng.Tick() // seed the diff base before the run

	topo, _ := numa.Discover()
	const chunks, size = 24, 256 << 10
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i / 64) // compressible runs: HC gets real work
	}

	sCfg := runtime.NodeConfig{Node: "starved-src", Role: runtime.Sender,
		Groups: []runtime.TaskGroup{
			{Type: runtime.Compress, Count: 1, Placement: runtime.OS()},
			{Type: runtime.Send, Count: 3, Placement: runtime.OS()},
		}}
	rCfg := runtime.NodeConfig{Node: "starved-gw", Role: runtime.Receiver,
		Groups: []runtime.TaskGroup{
			{Type: runtime.Receive, Count: 2, Placement: runtime.OS()},
			{Type: runtime.Decompress, Count: 4, Placement: runtime.OS()},
		}}

	ready := make(chan string, 1)
	recvErr := make(chan error, 1)
	go func() {
		recvErr <- pipeline.RunReceiver(pipeline.ReceiverOptions{
			Cfg: rCfg, Topo: topo, Bind: "127.0.0.1:0",
			Expect: chunks, Ready: ready, Metrics: reg,
			DisableBufPool: true,
			Sink:           func(pipeline.Chunk) error { return nil },
		})
	}()
	addr := <-ready

	var mu sync.Mutex
	sent := 0
	if err := pipeline.RunSender(pipeline.SenderOptions{
		Cfg: sCfg, Topo: topo, Peers: []string{addr}, Metrics: reg,
		Codec: pipeline.CodecHC, QueueCap: 4,
		DisableBufPool: true,
		Source: func() []byte {
			mu.Lock()
			defer mu.Unlock()
			if sent >= chunks {
				return nil
			}
			sent++
			return payload
		},
	}); err != nil {
		t.Fatalf("sender: %v", err)
	}
	if err := <-recvErr; err != nil {
		t.Fatalf("receiver: %v", err)
	}

	w := eng.Tick()
	if w == nil {
		t.Fatal("no window after second tick")
	}
	if w.Verdict != obs.VerdictCompressBound {
		t.Fatalf("verdict = %s, want compress-bound (evidence %v, queues %+v, stages %+v)",
			w.Verdict, w.Evidence, w.Queues, w.Stages)
	}
}

// TestWireBoundVerdict runs the degraded-link simulation with the wire
// capped at 2% for the whole run — the network is the engineered
// bottleneck — and checks the virtual-time self-diagnosis says
// wire-bound.
func TestWireBoundVerdict(t *testing.T) {
	res, err := experiments.DegradedSimWithSchedule(faults.LinkSchedule{
		{Start: 0, End: 30, Capacity: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) == 0 {
		t.Fatal("simulation produced no self-diagnosis windows")
	}
	if res.Dominant != obs.VerdictWireBound {
		t.Fatalf("dominant = %s, want wire-bound (regimes %+v)", res.Dominant, res.Regimes)
	}
	wire := 0
	for _, w := range res.Windows {
		if w.Verdict == obs.VerdictWireBound {
			wire++
		}
	}
	if wire < len(res.Windows)/2 {
		t.Fatalf("only %d/%d windows wire-bound", wire, len(res.Windows))
	}
}
