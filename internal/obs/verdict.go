package obs

import (
	"fmt"
	"sort"
)

// Verdict names the dominant bottleneck of one window.
type Verdict string

const (
	// VerdictIdle: the window moved no bytes and nothing was blocked.
	VerdictIdle Verdict = "idle"
	// VerdictCompressBound: the compression stage limits throughput —
	// producers back up into the compress queue, or compress workers are
	// the busiest stage.
	VerdictCompressBound Verdict = "compress-bound"
	// VerdictWireBound: the network limits throughput — senders back up
	// into the send queue waiting for wire capacity.
	VerdictWireBound Verdict = "wire-bound"
	// VerdictConsumerBound: the receive side limits throughput — the
	// receiver's queues exert backpressure, or its stages dominate busy
	// time.
	VerdictConsumerBound Verdict = "consumer-bound"
	// VerdictPoolStarved: the buffer pool cannot serve rentals from the
	// local NUMA domain — most gets miss or steal, so the hot path is
	// paying allocation and remote-memory costs.
	VerdictPoolStarved Verdict = "pool-starved"
	// VerdictChurnDegraded: topology or transport churn (reroutes,
	// failovers, redials, quarantines, holes being healed) disrupted the
	// window.
	VerdictChurnDegraded Verdict = "churn-degraded"
)

// Classifier thresholds. Shares are per wall-second of the window.
const (
	// blockedShareFloor: a queue counts as exerting backpressure when its
	// producers were collectively blocked at least this many seconds per
	// second.
	blockedShareFloor = 0.25
	// busyShareFloor: a stage counts as meaningfully busy when its
	// workers accrued at least this many worker-seconds per second.
	busyShareFloor = 0.05
	// poolMissShareFloor / poolMinGets: the pool counts as starved when
	// at least half the window's rentals (and at least this many of
	// them) missed the local free list.
	poolMissShareFloor = 0.5
	poolMinGets        = 16
)

// queueVerdict maps a backpressured queue to the verdict naming its
// consumer: the stage downstream of the queue is what the blocked
// producers are waiting on.
func queueVerdict(queue string) Verdict {
	switch queue {
	case "compq":
		return VerdictCompressBound
	case "sendq":
		return VerdictWireBound
	default: // recvq/rxq (decompress is the consumer), decq (sink is)
		return VerdictConsumerBound
	}
}

// stageVerdict maps the busiest stage to a verdict for the fallback
// path where nothing is queue-blocked.
func stageVerdict(stage string) Verdict {
	switch stage {
	case "compress":
		return VerdictCompressBound
	case "send":
		return VerdictWireBound
	default: // receive, decompress
		return VerdictConsumerBound
	}
}

// classify fills w.Verdict and w.Evidence from the window's signals, in
// strict priority order:
//
//  1. idle — no bytes moved, no churn, nothing blocked.
//  2. churn-degraded — any churn events: correctness work (rerouting,
//     healing, dedup) outranks steady-state tuning signals.
//  3. pool-starved — the NUMA pool is missing locally; allocation cost
//     pollutes every downstream signal, so it is named before them.
//  4. backpressure walk — the most-downstream queue whose producers
//     were blocked ≥ blockedShareFloor names its consumer.
//  5. busiest stage — no queue is blocked; the stage with the highest
//     busy share ≥ busyShareFloor is the limit.
//  6. deepest queue — signals too weak for 4/5; the deepest non-empty
//     queue's consumer gets the verdict.
//  7. idle — nothing to say.
func classify(w *Window) {
	blockedAny := false
	for _, q := range w.Queues {
		if q.PutBlockedShare >= blockedShareFloor || q.GetBlockedShare >= blockedShareFloor {
			blockedAny = true
			break
		}
	}
	if w.Bytes == 0 && w.Churn.Total == 0 && !blockedAny {
		w.Verdict = VerdictIdle
		w.Evidence = append(w.Evidence, "no bytes moved, no churn, no blocked time")
		return
	}

	if w.Churn.Total > 0 {
		w.Verdict = VerdictChurnDegraded
		w.Evidence = append(w.Evidence, fmt.Sprintf(
			"%d churn events (reroutes=%d failovers=%d redials=%d conn_drops=%d quarantined=%d dup_drops=%d abandoned=%d)",
			w.Churn.Total, w.Churn.Reroutes, w.Churn.Failovers, w.Churn.Redials,
			w.Churn.ConnDrops, w.Churn.Quarantined, w.Churn.DupDrops, w.Churn.Abandoned))
		return
	}

	if w.Pool.Gets >= poolMinGets && w.Pool.MissShare > poolMissShareFloor {
		w.Verdict = VerdictPoolStarved
		w.Evidence = append(w.Evidence, fmt.Sprintf(
			"pool miss share %.0f%% over %d gets (misses=%d steals=%d)",
			w.Pool.MissShare*100, w.Pool.Gets, w.Pool.Misses, w.Pool.Steals))
		return
	}

	// Backpressure walk, most-downstream queue first (Queues is sorted
	// upstream→downstream).
	for i := len(w.Queues) - 1; i >= 0; i-- {
		q := w.Queues[i]
		if q.PutBlockedShare >= blockedShareFloor {
			w.Verdict = queueVerdict(q.Queue)
			w.Evidence = append(w.Evidence, fmt.Sprintf(
				"%s producers blocked %.2f s/s (depth %.0f)", q.Queue, q.PutBlockedShare, q.Depth))
			return
		}
	}

	// Busiest stage.
	var busiest *StageWindow
	for i := range w.Stages {
		if busiest == nil || w.Stages[i].Busy > busiest.Busy {
			busiest = &w.Stages[i]
		}
	}
	if busiest != nil && busiest.Busy >= busyShareFloor {
		w.Verdict = stageVerdict(busiest.Stage)
		ev := fmt.Sprintf("%s is the busiest stage: %.2f worker-s/s", busiest.Stage, busiest.Busy)
		if busiest.Util > 0 {
			ev += fmt.Sprintf(" (util %.0f%%)", busiest.Util*100)
		}
		w.Evidence = append(w.Evidence, ev)
		return
	}

	// Deepest queue.
	if len(w.Queues) > 0 {
		qs := append([]QueueWindow(nil), w.Queues...)
		sort.SliceStable(qs, func(i, j int) bool { return qs[i].Depth > qs[j].Depth })
		if qs[0].Depth > 0 {
			w.Verdict = queueVerdict(qs[0].Queue)
			w.Evidence = append(w.Evidence, fmt.Sprintf(
				"weak signals; deepest queue %s holds %.0f items", qs[0].Queue, qs[0].Depth))
			return
		}
	}

	w.Verdict = VerdictIdle
	if w.Bytes > 0 {
		w.Evidence = append(w.Evidence, fmt.Sprintf(
			"%d bytes moved but no stage, queue or pool signal cleared its floor", w.Bytes))
	} else {
		w.Evidence = append(w.Evidence, "no signal cleared its floor")
	}
}
