package obs

import (
	"sort"
	"strings"
)

// StageWindow is one pipeline stage's windowed view: throughput over
// the window, busy time (worker-seconds of service time per wall
// second, from the stage latency histogram's sum delta), utilization
// against the configured worker count when known, and windowed
// latency/queue-wait quantiles.
type StageWindow struct {
	Stage      string  `json:"stage"`
	Gbps       float64 `json:"gbps"`
	Items      int64   `json:"items"`
	Busy       float64 `json:"busy"`           // worker-seconds per second
	Util       float64 `json:"util,omitempty"` // Busy / workers (Workers hint set)
	LatP50Ms   float64 `json:"lat_p50_ms,omitempty"`
	LatP99Ms   float64 `json:"lat_p99_ms,omitempty"`
	QwaitP50Ms float64 `json:"qwait_p50_ms,omitempty"`
	QwaitP99Ms float64 `json:"qwait_p99_ms,omitempty"`
}

// QueueWindow is one inter-stage queue's windowed backpressure view.
// PutBlockedShare is producer blocked-seconds accrued in the window per
// wall second (it exceeds 1 when several producers block at once);
// GetBlockedShare likewise for starved consumers.
type QueueWindow struct {
	Queue           string  `json:"queue"`
	Depth           float64 `json:"depth"` // at window end
	PutBlockedShare float64 `json:"put_blocked_share"`
	GetBlockedShare float64 `json:"get_blocked_share"`
}

// PoolWindow is the buffer pool's windowed NUMA-pressure view: how many
// rentals the window saw and what share missed the local free list
// (miss = fresh allocation, steal = another domain's list served it —
// remote pages on the hot path either way).
type PoolWindow struct {
	Gets       int64              `json:"gets,omitempty"`
	Misses     int64              `json:"misses,omitempty"`
	Steals     int64              `json:"steals,omitempty"`
	Oversize   int64              `json:"oversize,omitempty"`
	MissShare  float64            `json:"miss_share,omitempty"`  // (misses+steals)/gets
	StealShare float64            `json:"steal_share,omitempty"` // steals/gets
	ByDomain   map[string]float64 `json:"outstanding_by_domain,omitempty"`
}

// ChurnWindow counts the window's churn events — topology and transport
// disruptions plus their delivery-side fallout. Total sums only the
// disruption counters; SeqGaps and SeqLate ride along for visibility
// but do not count (benign reordering across parallel receive workers
// bumps them on perfectly healthy runs).
type ChurnWindow struct {
	Reroutes     int64 `json:"reroutes,omitempty"`
	Failovers    int64 `json:"failovers,omitempty"`
	Redials      int64 `json:"redials,omitempty"`
	ConnDrops    int64 `json:"conn_drops,omitempty"`
	HorizonFails int64 `json:"horizon_fails,omitempty"`
	PeerDeaths   int64 `json:"peer_deaths,omitempty"`
	Quarantined  int64 `json:"quarantined,omitempty"`
	SeqGaps      int64 `json:"seq_gaps,omitempty"`
	SeqLate      int64 `json:"seq_late,omitempty"`
	DupDrops     int64 `json:"dup_drops,omitempty"`
	Abandoned    int64 `json:"abandoned,omitempty"`
	Total        int64 `json:"total"`
}

// StreamHealth is one stream's row in the health scoreboard: windowed
// delivery throughput, cumulative delivered totals, end-to-end latency
// quantiles (windowed when the window saw traced chunks, else
// cumulative), and the stream's loss/duplication/rerouting counters.
// Stream is the registry label — a decimal id, or "other" for streams
// folded past the cardinality cap.
type StreamHealth struct {
	Stream   string  `json:"stream"`
	Gbps     float64 `json:"gbps"`
	Bytes    int64   `json:"bytes"`
	Chunks   int64   `json:"chunks"`
	E2EP50Ms float64 `json:"e2e_p50_ms,omitempty"`
	E2EP99Ms float64 `json:"e2e_p99_ms,omitempty"`
	Holes    int64   `json:"holes,omitempty"`
	Dups     int64   `json:"dups,omitempty"`
	Reroutes int64   `json:"reroutes,omitempty"`
	Failovers int64  `json:"failovers,omitempty"`
}

// Window is the diff of two consecutive snapshots: every derived signal
// over [T0, T1), plus the verdict naming the window's dominant
// bottleneck and the evidence lines that produced it. StreamsTotal is
// the scoreboard's full row count before any LimitStreams cap;
// StreamsOmitted counts rows dropped by the cap (healthy, not-slowest
// streams — never an unhealthy row).
type Window struct {
	T0             float64        `json:"t0"`
	T1             float64        `json:"t1"`
	Dur            float64        `json:"dur"`
	Verdict        Verdict        `json:"verdict"`
	Evidence       []string       `json:"evidence,omitempty"`
	Bytes          int64          `json:"bytes"` // bytes moved across all meters
	Stages         []StageWindow  `json:"stages,omitempty"`
	Queues         []QueueWindow  `json:"queues,omitempty"`
	Pool           PoolWindow     `json:"pool,omitempty"`
	Churn          ChurnWindow    `json:"churn,omitempty"`
	Streams        []StreamHealth `json:"streams,omitempty"`
	StreamsTotal   int            `json:"streams_total,omitempty"`
	StreamsOmitted int            `json:"streams_omitted,omitempty"`
}

// LimitStreams caps the scoreboard at max rows, recording the full
// count in StreamsTotal and the dropped count in StreamsOmitted. At a
// thousand streams the full scoreboard is the status payload's bulk,
// so the engine applies this per window; rows are kept by triage
// priority — every unhealthy row (holes, dups, reroutes, failovers)
// first, then the slowest healthy streams, which is where a fairness
// problem would surface. max <= 0 only records StreamsTotal.
func (w *Window) LimitStreams(max int) {
	w.StreamsTotal = len(w.Streams)
	if max <= 0 || len(w.Streams) <= max {
		return
	}
	unhealthy := func(sh StreamHealth) bool {
		return sh.Holes > 0 || sh.Dups > 0 || sh.Reroutes > 0 || sh.Failovers > 0
	}
	rows := append([]StreamHealth(nil), w.Streams...)
	sort.SliceStable(rows, func(i, j int) bool {
		ui, uj := unhealthy(rows[i]), unhealthy(rows[j])
		if ui != uj {
			return ui
		}
		return rows[i].Gbps < rows[j].Gbps
	})
	kept := rows[:max]
	sort.Slice(kept, func(i, j int) bool { return streamLabelLess(kept[i].Stream, kept[j].Stream) })
	w.StreamsOmitted = w.StreamsTotal - max
	w.Streams = kept
}

// streamLabelLess orders scoreboard labels: numeric ids ascending,
// "other" last.
func streamLabelLess(li, lj string) bool {
	if (li == "other") != (lj == "other") {
		return lj == "other"
	}
	if len(li) != len(lj) {
		return len(li) < len(lj)
	}
	return li < lj
}

// stageNames is the pipeline order of the real-execution stages; the
// backpressure graph and the busy-share fallback walk it.
var stageNames = []string{"compress", "send", "receive", "decompress"}

// queueOrder ranks inter-stage queues in pipeline order (upstream
// first). The graph walks it in reverse: the most-downstream queue
// still under producer backpressure names the bottleneck.
var queueOrder = map[string]int{"compq": 0, "sendq": 1, "recvq": 2, "rxq": 2, "decq": 3}

// churnCounters are the counter series whose deltas make up a window's
// ChurnWindow, paired with setters. info-marked series are recorded but
// excluded from Total (they also fire on healthy runs).
var churnCounters = []struct {
	name string
	info bool
	add  func(*ChurnWindow, int64)
}{
	{name: "reroutes", add: func(c *ChurnWindow, v int64) { c.Reroutes = v }},
	{name: "relay_failovers", add: func(c *ChurnWindow, v int64) { c.Failovers = v }},
	{name: "msgq_redials", add: func(c *ChurnWindow, v int64) { c.Redials = v }},
	{name: "msgq_conn_drops", add: func(c *ChurnWindow, v int64) { c.ConnDrops = v }},
	{name: "msgq_horizon_fails", add: func(c *ChurnWindow, v int64) { c.HorizonFails = v }},
	{name: "peer_deaths", add: func(c *ChurnWindow, v int64) { c.PeerDeaths = v }},
	{name: "chunks_quarantined", add: func(c *ChurnWindow, v int64) { c.Quarantined = v }},
	{name: "seq_gaps", info: true, add: func(c *ChurnWindow, v int64) { c.SeqGaps = v }},
	{name: "seq_late", info: true, add: func(c *ChurnWindow, v int64) { c.SeqLate = v }},
	{name: "dup_drops", add: func(c *ChurnWindow, v int64) { c.DupDrops = v }},
	{name: "ledger_abandoned", add: func(c *ChurnWindow, v int64) { c.Abandoned = v }},
}

// Diff computes the window between two consecutive snapshots. workers
// maps stage name → configured worker count (nil leaves Util zero).
// The verdict and evidence are filled by the classifier.
func Diff(prev, cur Snapshot, workers map[string]int) Window {
	w := Window{T0: prev.T, T1: cur.T, Dur: cur.T - prev.T}
	if w.Dur <= 0 {
		w.Dur = 0
	}

	// Total bytes moved, across every meter: the idle detector's input.
	for name, m := range cur.Meters {
		if d := m.Bytes - prev.Meters[name].Bytes; d > 0 {
			w.Bytes += d
		}
	}

	// Per-stage signals.
	for _, stage := range stageNames {
		m, ok := cur.Meters[stage]
		if !ok {
			continue
		}
		pm := prev.Meters[stage]
		sw := StageWindow{Stage: stage}
		// Deltas clamp at zero: a counter reset (process restart,
		// registry swap) makes cur younger than prev, and a negative
		// rate is noise, not a signal.
		if d := m.Items - pm.Items; d > 0 {
			sw.Items = d
		}
		if d := m.Bytes - pm.Bytes; d > 0 && w.Dur > 0 {
			sw.Gbps = float64(d) * 8 / 1e9 / w.Dur
		}
		if lat, ok := cur.Hists[stage+"_latency_ns"]; ok {
			plat := prev.Hists[stage+"_latency_ns"]
			bars, n, sum := histDiff(plat, lat)
			if w.Dur > 0 {
				sw.Busy = float64(sum) / 1e9 / w.Dur
			}
			if n > 0 {
				sw.LatP50Ms = barsQuantile(bars, n, 0.50) / 1e6
				sw.LatP99Ms = barsQuantile(bars, n, 0.99) / 1e6
			}
			if workers[stage] > 0 {
				sw.Util = sw.Busy / float64(workers[stage])
			}
		}
		if qw, ok := cur.Hists[stage+"_qwait_ns"]; ok {
			bars, n, _ := histDiff(prev.Hists[stage+"_qwait_ns"], qw)
			if n > 0 {
				sw.QwaitP50Ms = barsQuantile(bars, n, 0.50) / 1e6
				sw.QwaitP99Ms = barsQuantile(bars, n, 0.99) / 1e6
			}
		}
		w.Stages = append(w.Stages, sw)
	}

	// Queue backpressure: every "<q>_depth" gauge names a queue; its
	// split blocked-seconds series diff into per-second shares.
	for name, depth := range cur.Gauges {
		q, ok := strings.CutSuffix(name, "_depth")
		if !ok || strings.HasPrefix(q, "bufpool") {
			continue
		}
		qw := QueueWindow{Queue: q, Depth: depth}
		if w.Dur > 0 {
			if d := cur.Gauges[q+"_put_blocked_secs"] - prev.Gauges[q+"_put_blocked_secs"]; d > 0 {
				qw.PutBlockedShare = d / w.Dur
			}
			if d := cur.Gauges[q+"_get_blocked_secs"] - prev.Gauges[q+"_get_blocked_secs"]; d > 0 {
				qw.GetBlockedShare = d / w.Dur
			}
		}
		w.Queues = append(w.Queues, qw)
	}
	sort.Slice(w.Queues, func(i, j int) bool {
		oi, oki := queueOrder[w.Queues[i].Queue]
		oj, okj := queueOrder[w.Queues[j].Queue]
		if oki != okj {
			return oki // known pipeline queues first
		}
		if oi != oj {
			return oi < oj
		}
		return w.Queues[i].Queue < w.Queues[j].Queue
	})

	// Pool pressure. Deltas clamp at zero across counter resets.
	gdelta := func(name string) int64 {
		if d := int64(cur.Gauges[name] - prev.Gauges[name]); d > 0 {
			return d
		}
		return 0
	}
	hits := gdelta("bufpool_hits")
	w.Pool.Misses = gdelta("bufpool_misses")
	w.Pool.Steals = gdelta("bufpool_steals")
	w.Pool.Oversize = gdelta("bufpool_oversize")
	w.Pool.Gets = hits + w.Pool.Misses + w.Pool.Steals
	if w.Pool.Gets > 0 {
		w.Pool.MissShare = float64(w.Pool.Misses+w.Pool.Steals) / float64(w.Pool.Gets)
		w.Pool.StealShare = float64(w.Pool.Steals) / float64(w.Pool.Gets)
	}
	for name, v := range cur.Gauges {
		if d, ok := strings.CutPrefix(name, "bufpool_outstanding_domain_"); ok {
			if w.Pool.ByDomain == nil {
				w.Pool.ByDomain = make(map[string]float64)
			}
			w.Pool.ByDomain[d] = v
		}
	}

	// Churn pressure.
	for _, cc := range churnCounters {
		if d := cur.Counters[cc.name] - prev.Counters[cc.name]; d > 0 {
			cc.add(&w.Churn, d)
			if !cc.info {
				w.Churn.Total += d
			}
		}
	}

	w.Streams = streamHealth(prev, cur, w.Dur)
	classify(&w)
	return w
}

// streamHealth builds the scoreboard rows from the per-stream series in
// cur, with throughput and latency windowed against prev.
func streamHealth(prev, cur Snapshot, dur float64) []StreamHealth {
	labels := map[string]bool{}
	scan := func(name, base, suffix string) (string, bool) {
		rest, ok := strings.CutPrefix(name, base+"_stream_")
		if !ok {
			return "", false
		}
		if suffix != "" {
			rest, ok = strings.CutSuffix(rest, suffix)
			if !ok {
				return "", false
			}
		}
		return rest, rest != "" && !strings.Contains(rest, "_")
	}
	for name := range cur.Meters {
		if l, ok := scan(name, "delivered", ""); ok {
			labels[l] = true
		}
	}
	for name := range cur.Counters {
		for _, base := range []string{"dup_drops", "reroutes", "relay_failovers"} {
			if l, ok := scan(name, base, ""); ok {
				labels[l] = true
			}
		}
	}
	for name := range cur.Hists {
		if l, ok := scan(name, "chunk_e2e", "_ns"); ok {
			labels[l] = true
		}
	}
	if len(labels) == 0 {
		return nil
	}
	out := make([]StreamHealth, 0, len(labels))
	for l := range labels {
		sh := StreamHealth{Stream: l}
		if m, ok := cur.Meters["delivered_stream_"+l]; ok {
			sh.Bytes, sh.Chunks = m.Bytes, m.Items
			if d := m.Bytes - prev.Meters["delivered_stream_"+l].Bytes; d > 0 && dur > 0 {
				sh.Gbps = float64(d) * 8 / 1e9 / dur
			}
		}
		if h, ok := cur.Hists["chunk_e2e_stream_"+l+"_ns"]; ok {
			// Windowed quantiles when the window saw traced chunks,
			// cumulative otherwise (a stream can go quiet between
			// scrapes without its scoreboard row blanking out).
			bars, n, _ := histDiff(prev.Hists["chunk_e2e_stream_"+l+"_ns"], h)
			if n > 0 {
				sh.E2EP50Ms = barsQuantile(bars, n, 0.50) / 1e6
				sh.E2EP99Ms = barsQuantile(bars, n, 0.99) / 1e6
			} else if h.Count > 0 {
				full, _, _ := histDiff(HistState{}, h)
				sh.E2EP50Ms = barsQuantile(full, h.Count, 0.50) / 1e6
				sh.E2EP99Ms = barsQuantile(full, h.Count, 0.99) / 1e6
			}
		}
		sh.Holes = int64(cur.Gauges["ledger_holes_stream_"+l])
		sh.Dups = cur.Counters["dup_drops_stream_"+l]
		sh.Reroutes = cur.Counters["reroutes_stream_"+l]
		sh.Failovers = cur.Counters["relay_failovers_stream_"+l]
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return streamLabelLess(out[i].Stream, out[j].Stream) })
	return out
}
