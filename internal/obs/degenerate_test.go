package obs

import (
	"math"
	"testing"

	"numastream/internal/metrics"
)

// The cluster aligner scrapes many nodes on independent clocks, so the
// diff engine constantly sees degenerate inputs: empty diffs (a node
// that ticked twice with no traffic), zero-width time spans (two
// scrapes landing on the same stamp), and counter resets (a node
// restarting mid-run). None of those may produce negative rates, NaN
// quantiles, or phantom verdicts.

func TestHistDiffEmpty(t *testing.T) {
	bars, n, sum := histDiff(HistState{}, HistState{})
	if len(bars) != 0 || n != 0 || sum != 0 {
		t.Fatalf("empty diff: bars=%v n=%d sum=%d, want all zero", bars, n, sum)
	}
	if q := barsQuantile(bars, n, 0.99); q != 0 {
		t.Fatalf("empty diff p99 = %g, want 0", q)
	}
}

func TestHistDiffIdenticalSnapshots(t *testing.T) {
	h := HistState{Count: 10, Sum: 1000, Buckets: []metrics.HistogramBucket{{Le: 127, Count: 4}, {Le: 255, Count: 10}}}
	bars, n, sum := histDiff(h, h)
	if len(bars) != 0 || n != 0 || sum != 0 {
		t.Fatalf("identical diff: bars=%v n=%d sum=%d, want all zero", bars, n, sum)
	}
}

func TestHistDiffCounterReset(t *testing.T) {
	prev := HistState{Count: 100, Sum: 50000, Buckets: []metrics.HistogramBucket{{Le: 511, Count: 100}}}
	cur := HistState{Count: 3, Sum: 300, Buckets: []metrics.HistogramBucket{{Le: 127, Count: 3}}}
	bars, n, sum := histDiff(prev, cur)
	if n != 3 || sum != 300 {
		t.Fatalf("reset diff: n=%d sum=%d, want the young life's totals (3, 300)", n, sum)
	}
	if len(bars) != 1 || bars[0].n != 3 {
		t.Fatalf("reset diff bars = %+v, want cur's full distribution", bars)
	}
	if q := barsQuantile(bars, n, 0.99); q <= 0 || q > 127 {
		t.Fatalf("reset diff p99 = %g, want within cur's only bucket", q)
	}
}

func TestDiffZeroWidthWindow(t *testing.T) {
	s0 := Snapshot{
		T:      5,
		Meters: map[string]MeterState{"compress": {Bytes: 1000, Items: 1}},
		Gauges: map[string]float64{"sendq_depth": 3, "sendq_put_blocked_secs": 1},
	}
	s1 := Snapshot{
		T:      5, // same stamp: zero-width span
		Meters: map[string]MeterState{"compress": {Bytes: 9000, Items: 9}},
		Gauges: map[string]float64{"sendq_depth": 7, "sendq_put_blocked_secs": 4},
	}
	w := Diff(s0, s1, nil)
	if w.Dur != 0 {
		t.Fatalf("Dur = %g, want 0", w.Dur)
	}
	for _, st := range w.Stages {
		if math.IsNaN(st.Gbps) || math.IsInf(st.Gbps, 0) || st.Gbps != 0 {
			t.Fatalf("stage %s Gbps = %g over a zero-width window, want 0", st.Stage, st.Gbps)
		}
	}
	for _, q := range w.Queues {
		if math.IsNaN(q.PutBlockedShare) || math.IsInf(q.PutBlockedShare, 0) || q.PutBlockedShare != 0 {
			t.Fatalf("queue %s PutBlockedShare = %g over a zero-width window, want 0", q.Queue, q.PutBlockedShare)
		}
	}
}

func TestDiffCounterReset(t *testing.T) {
	prev := Snapshot{
		T: 10,
		Meters: map[string]MeterState{
			"compress":           {Bytes: 1 << 30, Items: 100},
			"delivered_stream_0": {Bytes: 1 << 30, Items: 100},
		},
		Counters: map[string]int64{"reroutes": 40},
		Gauges: map[string]float64{
			"sendq_depth": 2, "sendq_put_blocked_secs": 50,
			"bufpool_hits": 1000, "bufpool_misses": 900,
		},
		Hists: map[string]HistState{
			"compress_latency_ns": {Count: 100, Sum: 1e9, Buckets: []metrics.HistogramBucket{{Le: 1 << 20, Count: 100}}},
		},
	}
	// The node restarted: every cumulative series is younger than prev.
	cur := Snapshot{
		T: 11,
		Meters: map[string]MeterState{
			"compress":           {Bytes: 4096, Items: 2},
			"delivered_stream_0": {Bytes: 2048, Items: 1},
		},
		Counters: map[string]int64{"reroutes": 0},
		Gauges: map[string]float64{
			"sendq_depth": 1, "sendq_put_blocked_secs": 0.1,
			"bufpool_hits": 10, "bufpool_misses": 2,
		},
		Hists: map[string]HistState{
			"compress_latency_ns": {Count: 2, Sum: 2000, Buckets: []metrics.HistogramBucket{{Le: 1023, Count: 2}}},
		},
	}
	w := Diff(prev, cur, nil)
	for _, st := range w.Stages {
		if st.Gbps < 0 || st.Items < 0 || st.Busy < 0 || math.IsNaN(st.LatP50Ms) {
			t.Fatalf("stage %s went negative across a reset: %+v", st.Stage, st)
		}
	}
	for _, q := range w.Queues {
		if q.PutBlockedShare < 0 || q.GetBlockedShare < 0 {
			t.Fatalf("queue %s blocked share negative across a reset: %+v", q.Queue, q)
		}
	}
	if w.Pool.Gets < 0 || w.Pool.Misses < 0 || w.Pool.MissShare < 0 {
		t.Fatalf("pool window negative across a reset: %+v", w.Pool)
	}
	if w.Churn.Reroutes != 0 || w.Churn.Total != 0 {
		t.Fatalf("churn counted a reset as events: %+v", w.Churn)
	}
	for _, sh := range w.Streams {
		if sh.Gbps < 0 {
			t.Fatalf("stream %s Gbps = %g across a reset, want >= 0", sh.Stream, sh.Gbps)
		}
	}
}

// TestEngineDropCounters: the bounded rings' drop counts surface as
// registry counters, so a starved engine is visible on /metrics.
func TestEngineDropCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	m := reg.Meter("compress")
	e := NewEngine(reg, Options{WindowCap: 2, RegimeCap: 256})
	for i := 0; i < 6; i++ {
		m.AddBytes(1 << 20)
		m.Add(1)
		e.Observe(Capture(reg, float64(i)))
	}
	// 6 observations → 5 windows → 3 dropped past the cap of 2.
	if got := reg.CounterValue(CtrWindowDrops); got != 3 {
		t.Fatalf("%s = %d, want 3", CtrWindowDrops, got)
	}
	if n := len(e.Windows()); n != 2 {
		t.Fatalf("retained windows = %d, want 2", n)
	}
	st := e.Status(false)
	if st.Dropped != 3 {
		t.Fatalf("Status.Dropped = %d, want 3", st.Dropped)
	}
}
