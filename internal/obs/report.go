package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Report is the end-of-run self-diagnosis artifact: every retained
// window with its verdict, the regime transitions between them, and the
// dominant verdict — the one that governed the most run time.
type Report struct {
	Node           string             `json:"node,omitempty"`
	T0             float64            `json:"t0_run"`
	T1             float64            `json:"t1_run"`
	Dominant       Verdict            `json:"dominant"`
	Shares         map[string]float64 `json:"shares,omitempty"` // verdict → share of windowed time
	Regimes        []Regime           `json:"regimes,omitempty"`
	Windows        []Window           `json:"windows"`
	WindowsDropped int64              `json:"windows_dropped,omitempty"`
}

// BuildReport summarizes a run from its windows and regime log.
func BuildReport(node string, windows []Window, regimes []Regime, dropped int64) Report {
	r := Report{
		Node:           node,
		Dominant:       VerdictIdle,
		Regimes:        regimes,
		Windows:        windows,
		WindowsDropped: dropped,
	}
	if len(windows) == 0 {
		return r
	}
	r.T0 = windows[0].T0
	r.T1 = windows[len(windows)-1].T1
	durs := map[Verdict]float64{}
	total := 0.0
	for _, w := range windows {
		durs[w.Verdict] += w.Dur
		total += w.Dur
	}
	if total > 0 {
		r.Shares = make(map[string]float64, len(durs))
		best := -1.0
		// Deterministic tie-break: alphabetical verdict order.
		keys := make([]string, 0, len(durs))
		for v := range durs {
			keys = append(keys, string(v))
		}
		sort.Strings(keys)
		for _, k := range keys {
			share := durs[Verdict(k)] / total
			r.Shares[k] = share
			if share > best {
				best, r.Dominant = share, Verdict(k)
			}
		}
	}
	return r
}

// Report snapshots the engine's full history into a Report.
func (e *Engine) Report() Report {
	e.mu.Lock()
	windows := append([]Window(nil), e.windows...)
	regimes := append([]Regime(nil), e.regimes...)
	dropped := e.windowsDropped
	node := e.opts.Node
	e.mu.Unlock()
	return BuildReport(node, windows, regimes, dropped)
}

// Markdown renders the report as a human-readable document: summary,
// regime log, and a table with one row — and one verdict — per window.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run self-diagnosis")
	if r.Node != "" {
		fmt.Fprintf(&b, ": %s", r.Node)
	}
	fmt.Fprintf(&b, "\n\nDominant regime: **%s** over [%.2fs, %.2fs)", r.Dominant, r.T0, r.T1)
	if r.WindowsDropped > 0 {
		fmt.Fprintf(&b, " (%d early windows dropped from the ring)", r.WindowsDropped)
	}
	fmt.Fprintf(&b, "\n")
	if len(r.Shares) > 0 {
		keys := make([]string, 0, len(r.Shares))
		for k := range r.Shares {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return r.Shares[keys[i]] > r.Shares[keys[j]] })
		fmt.Fprintf(&b, "\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "- %s: %.0f%% of windowed time\n", k, r.Shares[k]*100)
		}
	}
	if len(r.Regimes) > 0 {
		fmt.Fprintf(&b, "\n## Regime transitions\n\n")
		for _, t := range r.Regimes {
			fmt.Fprintf(&b, "- t=%.2fs: %s → %s", t.T, t.From, t.To)
			if len(t.Evidence) > 0 {
				fmt.Fprintf(&b, " — %s", strings.Join(t.Evidence, "; "))
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	fmt.Fprintf(&b, "\n## Windows\n\n")
	fmt.Fprintf(&b, "| t0 | t1 | verdict | Gbps | evidence |\n|---:|---:|---|---:|---|\n")
	for _, w := range r.Windows {
		gbps := 0.0
		for _, st := range w.Stages {
			if st.Gbps > gbps {
				gbps = st.Gbps
			}
		}
		if gbps == 0 && w.Dur > 0 {
			gbps = float64(w.Bytes) * 8 / 1e9 / w.Dur
		}
		fmt.Fprintf(&b, "| %.2f | %.2f | %s | %.2f | %s |\n",
			w.T0, w.T1, w.Verdict, gbps, strings.Join(w.Evidence, "; "))
	}
	return b.String()
}

// WriteReportFile writes r to path: markdown when the path ends in
// ".md", indented JSON otherwise.
func WriteReportFile(path string, r Report) error {
	var data []byte
	if strings.HasSuffix(path, ".md") {
		data = []byte(r.Markdown())
	} else {
		var err error
		data, err = json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
	}
	return os.WriteFile(path, data, 0o644)
}
