// Package obs turns the flight recorder's raw series into verdicts: a
// snapshot-diff engine that periodically captures every registered
// meter, counter, gauge and histogram, diffs consecutive snapshots into
// windowed rates, derives per-stage utilization, backpressure,
// NUMA-pool pressure and churn pressure from them, and names the
// dominant bottleneck of each window — compress-bound, wire-bound,
// consumer-bound, pool-starved, churn-degraded or idle — with the
// evidence that produced it. Regime transitions append to a bounded
// event log renderable as JSONL. This is the sensor layer the roadmap's
// adaptive placement controller consumes, and it feeds the telemetry
// server's /status endpoint and the binaries' -report artifacts.
//
// Everything here runs off the hot path: a snapshot is a scrape (a few
// atomic loads per series) taken on the observer's own clock — wall
// time for real pipelines, virtual time when a simulation feeds
// snapshots in by hand — and diffing happens on the observer goroutine.
// The pipeline workers never see it.
package obs

import (
	"numastream/internal/metrics"
)

// MeterState is a meter's cumulative totals at snapshot time.
type MeterState struct {
	Bytes int64
	Items int64
}

// HistState is a histogram's cumulative state at snapshot time. Buckets
// are the populated cumulative buckets of metrics.HistogramSnapshot;
// diffing two states bucket-by-bucket yields the observation
// distribution within a window.
type HistState struct {
	Count   int64
	Sum     int64
	Buckets []metrics.HistogramBucket
}

// Snapshot is one point-in-time capture of a registry (or of a
// simulation's equivalent series). T is seconds on the run's clock —
// wall-clock seconds since the engine started for real pipelines,
// virtual seconds for simulated ones. All maps may be nil.
type Snapshot struct {
	T        float64
	Meters   map[string]MeterState
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]HistState
}

// Capture scrapes reg into a Snapshot stamped with time t. Callback
// gauges are polled (outside the registry lock, per GaugeSnapshots), so
// queue depths and blocked-time series reflect the live instant.
func Capture(reg *metrics.Registry, t float64) Snapshot {
	s := Snapshot{T: t}
	if reg == nil {
		return s
	}
	meters := reg.Snapshots()
	s.Meters = make(map[string]MeterState, len(meters))
	for _, m := range meters {
		s.Meters[m.Name] = MeterState{Bytes: m.Bytes, Items: m.Items}
	}
	counters := reg.CounterSnapshots()
	s.Counters = make(map[string]int64, len(counters))
	for _, c := range counters {
		s.Counters[c.Name] = c.Value
	}
	gauges := reg.GaugeSnapshots()
	s.Gauges = make(map[string]float64, len(gauges))
	for _, g := range gauges {
		s.Gauges[g.Name] = g.Value
	}
	hists := reg.HistogramSnapshots()
	s.Hists = make(map[string]HistState, len(hists))
	for _, h := range hists {
		s.Hists[h.Name] = HistState{Count: h.Count, Sum: h.Sum, Buckets: h.Buckets}
	}
	return s
}

// histWindow is the per-bucket observation counts that landed between
// two snapshots of one histogram, as (lower, upper, count) bars ready
// for quantile interpolation.
type histBar struct {
	lo, hi float64
	n      int64
}

// histDiff subtracts prev's cumulative buckets from cur's. Both lists
// are populated-only and sorted by le, so prev's cumulative count is a
// step function: at any le it is the count of the largest prev bucket
// at or below it — an le absent from prev inherits the step, it does
// not read as zero.
func histDiff(prev, cur HistState) (bars []histBar, count int64, sum int64) {
	if cur.Count < prev.Count {
		// Counter reset: the series restarted (process restart, registry
		// swap) and cur is a younger life than prev. Diffing against the
		// stale baseline would yield negative counts; treat cur as a
		// fresh distribution instead.
		prev = HistState{}
	}
	pi := 0
	prevStep := int64(0) // prev's cumulative count at the current le
	winCum := int64(0)   // window cumulative at the previous cur bucket
	for _, b := range cur.Buckets {
		for pi < len(prev.Buckets) && prev.Buckets[pi].Le <= b.Le {
			prevStep = prev.Buckets[pi].Count
			pi++
		}
		cum := b.Count - prevStep
		n := cum - winCum
		winCum = cum
		if n <= 0 {
			continue
		}
		bars = append(bars, histBar{lo: bucketLowerOf(b.Le), hi: float64(b.Le), n: n})
	}
	return bars, cur.Count - prev.Count, cur.Sum - prev.Sum
}

// bucketLowerOf reconstructs a log₂ bucket's inclusive lower bound from
// its upper (le) bound: buckets span [2^(i-1), 2^i - 1], so lower =
// (le+1)/2, with the ≤0 bucket at 0 and the saturated top bucket
// anchored at 2^62.
func bucketLowerOf(le int64) float64 {
	if le <= 0 {
		return 0
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	if le == maxInt64 {
		return float64(int64(1) << 62)
	}
	return float64((le + 1) / 2)
}

// barsQuantile interpolates the q-quantile of a windowed distribution.
func barsQuantile(bars []histBar, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for _, b := range bars {
		next := cum + float64(b.n)
		if next >= target {
			frac := (target - cum) / float64(b.n)
			return b.lo + frac*(b.hi-b.lo)
		}
		cum = next
	}
	if len(bars) > 0 {
		return bars[len(bars)-1].hi
	}
	return 0
}
