package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"numastream/internal/metrics"
)

// sampleLine matches one Prometheus exposition sample:
// name{optional labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func populatedRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Meter("receive").Add(1 << 20)
	reg.Counter("redials").Inc()
	reg.Gauge("peers").Set(2)
	reg.RegisterGauge("decq_depth", func() float64 { return 4 })
	h := reg.Histogram("recv_latency_ns")
	h.Observe(600)  // [512, 1023]
	h.Observe(1000) // [512, 1023]
	h.Observe(3_000_000)
	return reg
}

func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, populatedRegistry())
	out := buf.String()

	for _, want := range []string{
		"numastream_receive_bytes_total 1048576",
		"numastream_receive_items_total 1",
		"numastream_redials_total 1",
		"numastream_peers 2",
		"numastream_decq_depth 4",
		"# TYPE numastream_recv_latency_ns histogram",
		`numastream_recv_latency_ns_bucket{le="+Inf"} 3`,
		"numastream_recv_latency_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Every non-comment line must parse as a sample.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, populatedRegistry())
	bucketRe := regexp.MustCompile(`^numastream_recv_latency_ns_bucket\{le="([^"]+)"\} (\d+)$`)
	prevCount := int64(-1)
	prevLe := int64(-1)
	buckets := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		m := bucketRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		buckets++
		var le int64
		if m[1] == "+Inf" {
			le = int64(^uint64(0) >> 1)
		} else {
			v, err := strconv.ParseInt(m[1], 10, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", m[1], err)
			}
			le = v
		}
		n, _ := strconv.ParseInt(m[2], 10, 64)
		if le < prevLe || n < prevCount {
			t.Fatalf("buckets not cumulative/ordered at %q", line)
		}
		prevLe, prevCount = le, n
	}
	// Two finite buckets (600 and 1000 share one, 3ms its own) + +Inf.
	if buckets != 3 {
		t.Fatalf("bucket lines = %d, want 3", buckets)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"recv":          "recv",
		"decq-depth":    "decq_depth",
		"a.b/c":         "a_b_c",
		"9lives":        "_9lives",
		"send_latency1": "send_latency1",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := populatedRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics serves the exposition format with the right content type.
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	ct := resp.Header.Get("Content-Type")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "numastream_receive_bytes_total") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	// /debug/vars is valid JSON and carries the published registry.
	code, vars := get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := decoded["numastream"]; !ok {
		t.Fatal("/debug/vars missing the numastream var")
	}

	// /debug/pprof/ index responds.
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

func TestServeTwiceLatestRegistryWins(t *testing.T) {
	// expvar.Publish is process-global and panics on duplicates; Serve
	// must be callable repeatedly with the newest registry visible.
	regA := metrics.NewRegistry()
	regA.Counter("marker_a").Inc()
	srvA, err := Serve("127.0.0.1:0", regA)
	if err != nil {
		t.Fatalf("Serve A: %v", err)
	}
	defer srvA.Close()

	regB := metrics.NewRegistry()
	regB.Counter("marker_b").Inc()
	srvB, err := Serve("127.0.0.1:0", regB)
	if err != nil {
		t.Fatalf("Serve B: %v", err)
	}
	defer srvB.Close()

	// Each /metrics endpoint serves its own registry.
	_, a := get(t, fmt.Sprintf("http://%s/metrics", srvA.Addr()))
	if !strings.Contains(a, "numastream_marker_a_total") || strings.Contains(a, "marker_b") {
		t.Fatalf("server A /metrics:\n%s", a)
	}
	_, b := get(t, fmt.Sprintf("http://%s/metrics", srvB.Addr()))
	if !strings.Contains(b, "numastream_marker_b_total") || strings.Contains(b, "marker_a") {
		t.Fatalf("server B /metrics:\n%s", b)
	}

	// The process-wide expvar tracks the most recent Serve.
	_, vars := get(t, fmt.Sprintf("http://%s/debug/vars", srvA.Addr()))
	if !strings.Contains(vars, "marker_b") {
		t.Fatal("/debug/vars does not reflect the latest registry")
	}
}
