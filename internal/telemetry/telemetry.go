// Package telemetry serves a registry live over HTTP — the flight
// recorder's cockpit view. A Server exposes three endpoints on an
// opt-in address (-telemetry-addr on the binaries):
//
//	/metrics      Prometheus text exposition format, hand-rolled (no
//	              client library): per-stage byte/item counters and Gbps
//	              gauges, failure-event counters, queue-depth gauges,
//	              log-scale latency histogram buckets (nanosecond series
//	              doubled as seconds-converted series), and Go runtime
//	              health gauges.
//	/healthz      readiness: 200 "ok" while the server is up.
//	/trace        (ServeWith with a Tracer) live Chrome trace-event JSON
//	              snapshot of the run so far — load it at ui.perfetto.dev
//	              without waiting for the process to exit.
//	/status       (ServeWith with an Obs engine) the pipeline's live
//	              self-diagnosis: current bottleneck verdict with
//	              evidence, the latest window's per-stage / per-queue /
//	              pool / churn signals, and the regime log. JSON by
//	              default; ?format=text for a terminal summary,
//	              ?streams=1 to include the per-stream health
//	              scoreboard, ?log=1 for the regime log as JSONL,
//	              ?actions=1 (with an Adapt controller wired) for the
//	              adaptive placement action log.
//	/cluster      (ServeWith with a Fleet aggregator) the cluster-wide
//	              control-tower view: the fleet verdict naming the
//	              dominant node + stage, per-node windows, per-hop delay
//	              shares, SLO alert states and the cluster regime log.
//	              JSON by default; ?format=text for a terminal summary.
//	/alerts       (ServeWith with a Fleet aggregator) just the SLO alert
//	              states, as a JSON array.
//	/debug/vars   the standard expvar JSON dump (the registry is
//	              published under "numastream").
//	/debug/pprof  the standard net/http/pprof profiles.
//
// Everything reads straight from the shared metrics.Registry the
// pipeline workers are already recording into, so scraping costs a few
// atomic loads per series — no sampling thread, no extra allocation on
// the hot path.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"numastream/internal/adapt"
	"numastream/internal/fleet"
	"numastream/internal/metrics"
	"numastream/internal/obs"
	"numastream/internal/trace"
)

// Server serves telemetry for one registry until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// expvarReg is the registry the process-wide "numastream" expvar reads
// from; the most recent Serve call owns it.
var expvarReg atomic.Pointer[metrics.Registry]

var publishOnce sync.Once

// Options extends Serve with optional wiring.
type Options struct {
	// Tracer, when non-nil, is exposed at /trace as a live Chrome
	// trace-event JSON snapshot.
	Tracer *trace.Tracer
	// Obs, when non-nil, is exposed at /status as the live
	// self-diagnosis view (verdict, latest window, regime log,
	// per-stream scoreboard).
	Obs *obs.Engine
	// Fleet, when non-nil, is exposed at /cluster (the aggregated
	// control-tower view) and /alerts (the SLO alert states).
	Fleet *fleet.Aggregator
	// Adapt, when non-nil (and Obs is set), lets /status?actions=1
	// include the adaptive placement controller's action log.
	Adapt *adapt.Controller
}

// Serve starts a telemetry server for reg on addr (":0" picks a free
// port; read it back with Addr).
func Serve(addr string, reg *metrics.Registry) (*Server, error) {
	return ServeWith(addr, reg, Options{})
}

// ServeWith is Serve with Options. Every served registry also gains the
// Go runtime health gauges (goroutines, heap bytes, GC pause total).
func ServeWith(addr string, reg *metrics.Registry, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	expvarReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("numastream", expvar.Func(func() any {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			return map[string]any{
				"meters":     r.Snapshots(),
				"counters":   r.CounterSnapshots(),
				"gauges":     r.GaugeSnapshots(),
				"histograms": r.HistogramSnapshots(),
			}
		}))
	})

	RegisterRuntimeGauges(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	if opts.Tracer != nil {
		tr := opts.Tracer
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			tr.WriteJSON(w)
		})
	}
	if opts.Obs != nil {
		eng := opts.Obs
		ctrl := opts.Adapt
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			q := r.URL.Query()
			if q.Get("log") == "1" {
				w.Header().Set("Content-Type", "application/x-ndjson")
				obs.WriteRegimesJSONL(w, eng.Regimes())
				return
			}
			st := eng.Status(q.Get("streams") == "1")
			withActions := ctrl != nil && q.Get("actions") == "1"
			if q.Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				st.WriteText(w)
				if withActions {
					actions := ctrl.Actions()
					fmt.Fprintf(w, "\nadaptive actions (%d):\n%s", len(actions), adapt.FormatActions(actions))
				}
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if withActions {
				enc.Encode(struct {
					obs.Status
					Actions []adapt.Action `json:"actions"`
				}{st, ctrl.Actions()})
				return
			}
			enc.Encode(st)
		})
	}
	if opts.Fleet != nil {
		agg := opts.Fleet
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
			st := agg.Status()
			if r.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				st.WriteText(w)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(st)
		})
		mux.HandleFunc("/alerts", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(agg.Alerts())
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// sanitize maps an arbitrary registry key onto a legal Prometheus
// metric-name fragment ([a-zA-Z0-9_]).
func sanitize(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders reg in the Prometheus text exposition format
// (version 0.0.4). Meters become <name>_bytes_total / <name>_items_total
// counters plus a <name>_gbps gauge; counters become <name>_total;
// gauges map directly; histograms emit the classic _bucket{le=...} /
// _sum / _count triple with cumulative buckets. Every metric carries the
// numastream_ prefix.
//
// Histograms whose name ends in _ns (every latency series the pipeline
// records) are additionally rendered as a *_seconds histogram with le
// boundaries and sum divided by 1e9 — the Prometheus-idiomatic base
// unit, and the series dashboards quote (chunk_e2e_seconds,
// chunk_wire_seconds). The raw _ns series stays: its integer boundaries
// are what the repo's own tooling and tests key on.
func WritePrometheus(w io.Writer, reg *metrics.Registry) {
	for _, m := range reg.Snapshots() {
		n := "numastream_" + sanitize(m.Name)
		fmt.Fprintf(w, "# TYPE %s_bytes_total counter\n", n)
		fmt.Fprintf(w, "%s_bytes_total %d\n", n, m.Bytes)
		fmt.Fprintf(w, "# TYPE %s_items_total counter\n", n)
		fmt.Fprintf(w, "%s_items_total %d\n", n, m.Items)
		fmt.Fprintf(w, "# TYPE %s_gbps gauge\n", n)
		fmt.Fprintf(w, "%s_gbps %g\n", n, m.Gbps)
	}
	for _, c := range reg.CounterSnapshots() {
		n := "numastream_" + sanitize(c.Name)
		fmt.Fprintf(w, "# TYPE %s_total counter\n", n)
		fmt.Fprintf(w, "%s_total %d\n", n, c.Value)
	}
	for _, g := range reg.GaugeSnapshots() {
		n := "numastream_" + sanitize(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", n)
		fmt.Fprintf(w, "%s %g\n", n, g.Value)
	}
	for _, h := range reg.HistogramSnapshots() {
		n := "numastream_" + sanitize(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Le, b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)

		if !strings.HasSuffix(h.Name, "_ns") {
			continue
		}
		sec := "numastream_" + sanitize(strings.TrimSuffix(h.Name, "_ns")) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", sec)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", sec, float64(b.Le)/1e9, b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", sec, h.Count)
		fmt.Fprintf(w, "%s_sum %g\n", sec, float64(h.Sum)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", sec, h.Count)
	}
}
