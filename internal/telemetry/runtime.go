package telemetry

import (
	"math"
	runtimemetrics "runtime/metrics"

	"numastream/internal/metrics"
)

// Go runtime health gauges exported through /metrics. Callback gauges:
// nothing is sampled until a scrape asks, so an idle telemetry endpoint
// costs zero.
const (
	GaugeGoroutines  = "go_goroutines"
	GaugeHeapBytes   = "go_heap_bytes"
	GaugeGCPauseSecs = "go_gc_pause_total_seconds"
)

// runtime/metrics sample names behind the gauges.
const (
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleHeapBytes  = "/memory/classes/heap/objects:bytes"
	sampleGCPauses   = "/gc/pauses:seconds"
)

func readSample(name string) runtimemetrics.Value {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	return s[0].Value
}

// RegisterRuntimeGauges wires Go runtime health into reg: live goroutine
// count, heap-object bytes, and total GC pause time. ServeWith calls it
// on every served registry; it is idempotent per registry (re-registering
// replaces the callback with an identical one).
func RegisterRuntimeGauges(reg *metrics.Registry) {
	reg.RegisterGauge(GaugeGoroutines, func() float64 {
		if v := readSample(sampleGoroutines); v.Kind() == runtimemetrics.KindUint64 {
			return float64(v.Uint64())
		}
		return 0
	})
	reg.RegisterGauge(GaugeHeapBytes, func() float64 {
		if v := readSample(sampleHeapBytes); v.Kind() == runtimemetrics.KindUint64 {
			return float64(v.Uint64())
		}
		return 0
	})
	reg.RegisterGauge(GaugeGCPauseSecs, func() float64 {
		v := readSample(sampleGCPauses)
		if v.Kind() != runtimemetrics.KindFloat64Histogram {
			return 0
		}
		return histogramTotal(v.Float64Histogram())
	})
}

// histogramTotal estimates the sum of all observations in a
// runtime/metrics histogram as Σ count × bucket midpoint. The runtime
// exposes GC pauses only as a distribution, so the "total pause" series
// is an estimate bounded by the bucket widths — amply precise for a
// health gauge watching for pause-time growth.
func histogramTotal(h *runtimemetrics.Float64Histogram) float64 {
	if h == nil || len(h.Buckets) < 2 {
		return 0
	}
	var total float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			continue // unbounded both ways: no usable estimate
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += float64(count) * mid
	}
	return total
}
