package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"numastream/internal/bufpool"
	"numastream/internal/metrics"
)

// TestServeBufpoolGauges checks the operator-facing contract from
// DESIGN.md §10: a pool registered on a served registry shows its
// hit/miss/steal counters and the outstanding-lease leak gauge (total
// and per domain) on /metrics.
func TestServeBufpoolGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	pool := bufpool.New(2)
	pool.Register(reg)

	// One hit, one miss, one leaked lease: Get twice in the same class,
	// return one buffer, re-rent it, and keep the other outstanding.
	a := pool.Get(0, 4096)
	leak := pool.Get(0, 4096)
	a.Release()
	b := pool.Get(0, 4096)
	defer b.Release()
	defer leak.Release()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	for _, want := range []string{
		"numastream_" + bufpool.GaugeOutstanding + " 2",
		"numastream_" + bufpool.GaugeOutstanding + "_domain_0 2",
		"numastream_" + bufpool.GaugeOutstanding + "_domain_1 0",
		"numastream_" + bufpool.GaugeMisses,
		"numastream_" + bufpool.GaugeSteals,
		"numastream_" + bufpool.GaugeOversize,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// sync.Pool may drop the returned buffer under the race detector,
	// so only assert the hit counter when it is deterministic.
	if !bufpool.RaceEnabled && !strings.Contains(text, "numastream_"+bufpool.GaugeHits+" 1") {
		t.Errorf("/metrics missing %s = 1:\n%s", bufpool.GaugeHits, text)
	}
}
