package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"numastream/internal/metrics"
	"numastream/internal/trace"
)

func TestWritePrometheusSecondsConversion(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, populatedRegistry())
	out := buf.String()

	// The _ns histogram stays untouched...
	if !strings.Contains(out, `numastream_recv_latency_ns_bucket{le="+Inf"} 3`) {
		t.Fatalf("raw _ns series lost:\n%s", out)
	}
	// ...and a seconds-converted twin appears with divided boundaries:
	// the 3_000_000 ns observation lands in the (2097152, 4194303]
	// bucket, whose seconds boundary is ~0.00419.
	for _, want := range []string{
		"# TYPE numastream_recv_latency_seconds histogram",
		`numastream_recv_latency_seconds_bucket{le="+Inf"} 3`,
		"numastream_recv_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	secBucket := regexp.MustCompile(`numastream_recv_latency_seconds_bucket\{le="([0-9.e+-]+)"\} `)
	found := false
	for _, m := range secBucket.FindAllStringSubmatch(out, -1) {
		if strings.Contains(m[1], ".") || strings.Contains(m[1], "e") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seconds buckets have no fractional boundaries:\n%s", out)
	}
	// The sum converts: 600 + 1000 + 3e6 ns ≈ 0.0030016 s.
	if !strings.Contains(out, "numastream_recv_latency_seconds_sum 0.0030016") {
		t.Fatalf("seconds sum not converted:\n%s", out)
	}
}

func TestServeHealthzAndRuntimeGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	_, mbody := get(t, base+"/metrics")
	for _, name := range []string{
		"numastream_go_goroutines ",
		"numastream_go_heap_bytes ",
		"numastream_go_gc_pause_total_seconds ",
	} {
		if !strings.Contains(mbody, name) {
			t.Fatalf("/metrics missing %q:\n%s", name, mbody)
		}
	}
	// A live process has goroutines and a heap; the gauges must carry
	// real values, not zeros.
	gor := regexp.MustCompile(`numastream_go_goroutines ([0-9.e+]+)`).FindStringSubmatch(mbody)
	if gor == nil || gor[1] == "0" {
		t.Fatalf("goroutine gauge empty: %v", gor)
	}
	heap := regexp.MustCompile(`numastream_go_heap_bytes ([0-9.e+]+)`).FindStringSubmatch(mbody)
	if heap == nil || heap[1] == "0" {
		t.Fatalf("heap gauge empty: %v", heap)
	}
}

func TestServeTraceEndpoint(t *testing.T) {
	tr := trace.New(0)
	tr.Add(trace.Event{Name: "compress", Process: "snd", Start: 0.001, Duration: 0.002})
	reg := metrics.NewRegistry()
	srv, err := ServeWith("127.0.0.1:0", reg, Options{Tracer: tr})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	defer srv.Close()

	client := &http.Client{}
	resp, err := client.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(events) != 1 || events[0]["name"] != "compress" {
		t.Fatalf("/trace events = %v", events)
	}

	// A snapshot is live: add another event, re-fetch, see both.
	tr.Add(trace.Event{Name: "send", Process: "snd", Start: 0.004})
	_, body := get(t, "http://"+srv.Addr()+"/trace")
	if !strings.Contains(body, `"send"`) {
		t.Fatalf("/trace not live:\n%s", body)
	}

	// Without a tracer the endpoint does not exist.
	plain, err := Serve("127.0.0.1:0", metrics.NewRegistry())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer plain.Close()
	if code, _ := get(t, "http://"+plain.Addr()+"/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", code)
	}
}
