package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"numastream/internal/fleet"
	"numastream/internal/metrics"
	"numastream/internal/obs"
)

// TestServeClusterEndpoints drives the full real-mode scrape loop: two
// nodes serve /status from their own obs engines, a fleet aggregator
// scrapes both over HTTP, and a third server exposes the aggregated
// /cluster and /alerts views.
func TestServeClusterEndpoints(t *testing.T) {
	startNode := func(node string) (*Server, *obs.Engine, *metrics.Registry) {
		reg := metrics.NewRegistry()
		eng := obs.NewEngine(reg, obs.Options{Node: node})
		srv, err := ServeWith("127.0.0.1:0", reg, Options{Obs: eng})
		if err != nil {
			t.Fatalf("serve %s: %v", node, err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv, eng, reg
	}

	sendSrv, sendEng, sendReg := startNode("sender1")
	gwSrv, gwEng, gwReg := startNode("gateway")

	// Give each node a window of traffic.
	sendReg.Meter("compress").AddBytes(1 << 30)
	gwReg.Meter("delivered_stream_0").AddBytes(1 << 28)
	for tick := 0; tick < 2; tick++ {
		sendEng.Observe(obs.Capture(sendReg, float64(tick)))
		gwEng.Observe(obs.Capture(gwReg, float64(tick)))
	}

	agg := fleet.New(fleet.Options{
		Fleet: "http-loop",
		SLOs:  []fleet.SLO{{Metric: "holes", Op: "<=", Threshold: 0}},
	})
	agg.AddSource(fleet.HTTPSource("sender1", fleet.RoleSender, sendSrv.Addr()))
	agg.AddSource(fleet.HTTPSource("gateway", fleet.RoleGateway, gwSrv.Addr()))
	agg.ObserveAt(0)
	if w := agg.ObserveAt(1); w == nil {
		t.Fatal("no cluster window after two observations")
	}

	reg := metrics.NewRegistry()
	srv, err := ServeWith("127.0.0.1:0", reg, Options{Fleet: agg})
	if err != nil {
		t.Fatalf("serve cluster: %v", err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/cluster")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/cluster content type = %q", ctype)
	}
	var st fleet.ClusterStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/cluster does not parse: %v\n%s", err, body)
	}
	if st.Fleet != "http-loop" || st.Window == nil || len(st.Window.Nodes) != 2 {
		t.Fatalf("/cluster = %+v, want both scraped nodes in the window", st)
	}
	for _, nw := range st.Window.Nodes {
		if nw.Err != "" {
			t.Fatalf("node %s unreachable through live scrape: %s", nw.Node, nw.Err)
		}
	}

	text, ctype := get("/cluster?format=text")
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(text, "fleet: http-loop") {
		t.Fatalf("/cluster?format=text = %q (%s)", text, ctype)
	}

	body, ctype = get("/alerts")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/alerts content type = %q", ctype)
	}
	var alerts []fleet.Alert
	if err := json.Unmarshal([]byte(body), &alerts); err != nil {
		t.Fatalf("/alerts does not parse: %v\n%s", err, body)
	}
	if len(alerts) != 1 || alerts[0].SLO.Metric != "holes" || alerts[0].State != fleet.AlertOK {
		t.Fatalf("/alerts = %+v, want the holes budget ok", alerts)
	}
}
