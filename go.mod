module numastream

go 1.22
