// Benchmarks regenerating the paper's evaluation: one testing.B target
// per table/figure (reporting the headline Gbps as custom metrics), the
// mechanism ablations of DESIGN.md §6, and micro-benchmarks of the real
// substrates (LZ4 codec, queue, loopback pipeline). Run:
//
//	go test -bench=. -benchmem
package numastream_test

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"numastream"
	"numastream/internal/experiments"
	"numastream/internal/lz4"
	"numastream/internal/pipeline"
	"numastream/internal/queue"
	"numastream/internal/tomo"
)

// --- Figure/table reproductions ------------------------------------

// BenchmarkFig5Placement regenerates Figure 5's contended point: 32
// streaming processes per placement scenario.
func BenchmarkFig5Placement(b *testing.B) {
	for _, placement := range experiments.Fig5Placements {
		b.Run(placement, func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig5Streaming([]int{32})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Placement == placement {
						gbps = r.Gbps
					}
				}
			}
			b.ReportMetric(gbps, "Gbps")
		})
	}
}

// BenchmarkFig6CoreUsage regenerates Figures 6 and 7's per-core data.
func BenchmarkFig6CoreUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6CoreUsage(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7RemoteAccess measures the remote-traffic variant of the
// core grid (same runs, Figure 7's metric).
func BenchmarkFig7RemoteAccess(b *testing.B) {
	var remote float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6CoreUsage([]experiments.Fig6Config{
			{Label: "32P_16c_N0", Processes: 32, Cores: 16, Domain: 0},
		})
		if err != nil {
			b.Fatal(err)
		}
		remote = 0
		for _, cs := range res[0].CoreStats {
			remote += cs.RemoteBytes
		}
	}
	b.ReportMetric(remote/1e9, "remote-GB")
}

// BenchmarkFig8Compression regenerates Figure 8a (configuration A vs E
// at 32 threads, the "nearly halved" comparison).
func BenchmarkFig8Compression(b *testing.B) {
	var a32, e32 float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8Compression([]int{32})
		ra, _ := experiments.CodecResultFor(res, "A", 32)
		re, _ := experiments.CodecResultFor(res, "E", 32)
		a32, e32 = ra.Gbps, re.Gbps
	}
	b.ReportMetric(a32, "A32-Gbps")
	b.ReportMetric(e32, "E32-Gbps")
}

// BenchmarkFig9Decompression regenerates Figure 9a's 16-thread point
// (split vs single-socket contention).
func BenchmarkFig9Decompression(b *testing.B) {
	var a16, e16 float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9Decompression([]int{16})
		ra, _ := experiments.CodecResultFor(res, "A", 16)
		re, _ := experiments.CodecResultFor(res, "E", 16)
		a16, e16 = ra.Gbps, re.Gbps
	}
	b.ReportMetric(a16, "A16-Gbps")
	b.ReportMetric(e16, "E16-Gbps")
}

// BenchmarkFig11NetworkPlacement regenerates Figure 11's divergence
// point (3 thread pairs, configurations A vs B).
func BenchmarkFig11NetworkPlacement(b *testing.B) {
	var a3, b3 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11Network([]int{3})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			switch r.Config {
			case "A":
				a3 = r.Gbps
			case "B":
				b3 = r.Gbps
			}
		}
	}
	b.ReportMetric(a3, "A-Gbps")
	b.ReportMetric(b3, "B-Gbps")
}

// BenchmarkFig12EndToEnd regenerates Figure 12's headline cells: the 37
// Gbps baseline (A) and the tuned configuration (F/G at 8 threads,
// receiver on NUMA 1).
func BenchmarkFig12EndToEnd(b *testing.B) {
	var baseline, best float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12EndToEnd([]int{8})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Config == "A" && r.RecvDomain == 1 {
				baseline = r.E2EGbps
			}
			if r.Config == "F" && r.RecvDomain == 1 {
				best = r.E2EGbps
			}
		}
	}
	b.ReportMetric(baseline, "baseline-Gbps")
	b.ReportMetric(best, "tuned-Gbps")
	if baseline > 0 {
		b.ReportMetric(best/baseline, "speedup-x")
	}
}

// BenchmarkFig14MultiStream regenerates Figure 14: four concurrent
// streams, runtime placement vs the OS baseline.
func BenchmarkFig14MultiStream(b *testing.B) {
	for _, mode := range []experiments.Fig14Mode{experiments.ModeRuntime, experiments.ModeOS} {
		b.Run(string(mode), func(b *testing.B) {
			var net, e2e float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig14MultiStream(mode)
				if err != nil {
					b.Fatal(err)
				}
				net, e2e = res.TotalNet, res.TotalE2E
			}
			b.ReportMetric(net, "net-Gbps")
			b.ReportMetric(e2e, "e2e-Gbps")
		})
	}
}

// --- Mechanism ablations (DESIGN.md §6) -----------------------------

func BenchmarkAblationRemotePenalty(b *testing.B) {
	var r experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblateRemotePenalty()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.With*100, "with-pct")
	b.ReportMetric(r.Without*100, "without-pct")
}

func BenchmarkAblationUncoreContention(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblateUncoreContention()
	}
	b.ReportMetric(r.With*100, "with-pct")
	b.ReportMetric(r.Without*100, "without-pct")
}

func BenchmarkAblationContextSwitchTax(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblateContextSwitchTax()
	}
	b.ReportMetric(r.With*100, "with-pct")
	b.ReportMetric(r.Without*100, "without-pct")
}

func BenchmarkAblationMigrationTax(b *testing.B) {
	var r experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AblateMigrationTax()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.With, "with-x")
	b.ReportMetric(r.Without, "without-x")
}

// --- Substrate micro-benchmarks -------------------------------------

// projFrame is one quarter-scale synthetic projection, shared across
// codec benches.
var projFrame = func() []byte {
	cfg := tomo.DefaultProjectionConfig()
	cfg.Width /= 4
	cfg.Height /= 4
	return tomo.Projection(tomo.RandomPhantom(3, 60), 0.7, cfg)
}()

// BenchmarkLZ4Compress measures the real codec on projection data (the
// calibration anchor for hw.CompressRate).
func BenchmarkLZ4Compress(b *testing.B) {
	dst := make([]byte, lz4.CompressBound(len(projFrame)))
	b.SetBytes(int64(len(projFrame)))
	for i := 0; i < b.N; i++ {
		if _, err := lz4.CompressBlock(projFrame, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLZ4Decompress measures decode speed (the paper's ~3X
// asymmetry shows up here).
func BenchmarkLZ4Decompress(b *testing.B) {
	packed := lz4.Compress(projFrame)
	dst := make([]byte, len(projFrame))
	b.SetBytes(int64(len(projFrame)))
	for i := 0; i < b.N; i++ {
		if _, err := lz4.DecompressBlock(packed, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueThroughput measures the inter-stage queue under a
// producer/consumer pair.
func BenchmarkQueueThroughput(b *testing.B) {
	b.ReportAllocs()
	q := queue.New[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := q.Get(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Put(i); err != nil {
			b.Fatal(err)
		}
	}
	q.Close()
	wg.Wait()
}

// BenchmarkLoopbackPipeline measures the real goroutine pipeline over
// loopback TCP with compression, end to end. Buffer pooling is on, as
// in production; BenchmarkLoopbackPipelineNoPool is the -bufpool=off
// ablation, so allocs/op quantifies exactly what pooling removes.
func BenchmarkLoopbackPipeline(b *testing.B)       { benchLoopback(b, false) }
func BenchmarkLoopbackPipelineNoPool(b *testing.B) { benchLoopback(b, true) }

// BenchmarkGatewayFanIn measures multi-sender fan-in at the gateway:
// eight concurrent senders through the legacy single pull queue versus
// the sharded receive path. The sharded variant removes head-of-line
// blocking between streams (the thousand-stream gateway's core claim);
// with healthy homogeneous senders the two should be comparable —
// sharding must not tax the fan-in it exists to protect.
func BenchmarkGatewayFanIn(b *testing.B) {
	b.Run("single", func(b *testing.B) { benchFanIn(b, 0) })
	b.Run("sharded", func(b *testing.B) { benchFanIn(b, 4) })
}

func benchFanIn(b *testing.B, shards int) {
	b.ReportAllocs()
	const (
		senders   = 8
		chunkSize = 256 << 10
	)
	chunk := bytes.Repeat([]byte("fan-in payload "), chunkSize/15+1)[:chunkSize]
	host := numastream.SyntheticTopology(1, 4)
	topoInfo := numastream.TopologyInfo{Sockets: 1, CoresPerSocket: 4, NICSocket: 0}
	rcvCfg, err := numastream.GenerateReceiverConfig("gw", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		b.Fatal(err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("src", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 1})
	if err != nil {
		b.Fatal(err)
	}

	per := b.N / senders
	total := 0
	counts := make([]int, senders)
	for s := range counts {
		counts[s] = per
		total += per
	}
	counts[0] += b.N - total

	b.SetBytes(chunkSize)
	b.ResetTimer()

	ready := make(chan string, 1)
	recvDone := make(chan error, 1)
	go func() {
		recvDone <- numastream.StartReceiver(numastream.ReceiverOptions{
			Cfg: rcvCfg, Topo: host, Bind: "127.0.0.1:0",
			Expect: b.N, Ready: ready, Shards: shards,
		})
	}()
	addr := <-ready
	errs := make(chan error, senders)
	for s := 0; s < senders; s++ {
		go func(s int) {
			sent := 0
			errs <- numastream.StartSender(numastream.SenderOptions{
				Cfg: sndCfg, Topo: host, Peers: []string{addr}, StreamID: uint32(s),
				Source: func() []byte {
					if sent >= counts[s] {
						return nil
					}
					sent++
					return chunk
				},
			})
		}(s)
	}
	for s := 0; s < senders; s++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	if err := <-recvDone; err != nil {
		b.Fatal(err)
	}
}

func benchLoopback(b *testing.B, disablePool bool) {
	b.ReportAllocs()
	const chunkSize = 1 << 20
	chunk := bytes.Repeat([]byte("tomography pixels "), chunkSize/18+1)[:chunkSize]
	host := numastream.SyntheticTopology(1, 4)
	topoInfo := numastream.TopologyInfo{Sockets: 1, CoresPerSocket: 4, NICSocket: 0}
	rcvCfg, err := numastream.GenerateReceiverConfig("gw", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		b.Fatal(err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("src", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		b.Fatal(err)
	}

	b.SetBytes(chunkSize)
	b.ResetTimer()

	ready := make(chan string, 1)
	recvDone := make(chan error, 1)
	go func() {
		recvDone <- numastream.StartReceiver(numastream.ReceiverOptions{
			Cfg: rcvCfg, Topo: host, Bind: "127.0.0.1:0",
			Expect: b.N, Ready: ready, DisableBufPool: disablePool,
		})
	}()
	addr := <-ready
	sent := 0
	err = numastream.StartSender(numastream.SenderOptions{
		Cfg: sndCfg, Topo: host, Peers: []string{addr},
		DisableBufPool: disablePool,
		Source: func() []byte {
			if sent >= b.N {
				return nil
			}
			sent++
			return chunk
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := <-recvDone; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkElasticPoolGrowShrink measures one full elastic churn cycle
// against a live pool: grow one worker onto the next domain, shrink it
// back, then wait for the retirement to land (Live back at baseline).
// This is the end-to-end latency the adaptive placement controller pays
// per resize step, including the lazy chunk-boundary handshake.
func BenchmarkElasticPoolGrowShrink(b *testing.B) {
	stop := make(chan struct{})
	pool := pipeline.StartPool(pipeline.PoolConfig{
		Name: "bench", Workers: 2, MaxWorkers: 8,
	}, func(w *pipeline.Worker) error {
		for {
			if w.Retiring() {
				return nil
			}
			select {
			case <-stop:
				return nil
			default:
				runtime.Gosched()
			}
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dom := i % 2
		if pool.Grow(1, dom) != 1 {
			b.Fatal("grow refused")
		}
		if pool.Shrink(1, dom) != 1 {
			b.Fatal("shrink refused")
		}
		for pool.Live() != 2 {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	close(stop)
	if err := pool.Wait(); err != nil {
		b.Fatal(err)
	}
}
