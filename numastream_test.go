package numastream_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"numastream"
)

// The facade must expose a workable end-to-end API: generate configs
// from topology knowledge, run a receiver and a sender over loopback,
// and deliver every chunk intact.
func TestFacadeEndToEnd(t *testing.T) {
	const chunks = 16
	const chunkSize = 32 << 10

	host := numastream.SyntheticTopology(2, 2)
	gen := numastream.TopologyInfo{Sockets: 2, CoresPerSocket: 2, NICSocket: 1}

	rcvCfg, err := numastream.GenerateReceiverConfig("gw", gen,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		t.Fatalf("GenerateReceiverConfig: %v", err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("src", gen,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		t.Fatalf("GenerateSenderConfig: %v", err)
	}

	// The generated receiver config follows the paper's rules.
	recv, ok := rcvCfg.Group(numastream.Receive)
	if !ok || recv.Placement.Sockets[0] != 1 {
		t.Fatalf("receive group = %+v, want pinned to NIC domain", recv)
	}

	ready := make(chan string, 1)
	var mu sync.Mutex
	var got [][]byte
	recvDone := make(chan error, 1)
	go func() {
		recvDone <- numastream.StartReceiver(numastream.ReceiverOptions{
			Cfg: rcvCfg, Topo: host, Bind: "127.0.0.1:0",
			Expect: chunks, Ready: ready,
			Sink: func(c numastream.Chunk) error {
				mu.Lock()
				defer mu.Unlock()
				data := make([]byte, len(c.Data))
				copy(data, c.Data)
				got = append(got, data)
				return nil
			},
		})
	}()

	addr := <-ready
	sent := 0
	reg := numastream.NewRegistry()
	err = numastream.StartSender(numastream.SenderOptions{
		Cfg: sndCfg, Topo: host, Peers: []string{addr}, Metrics: reg,
		Source: func() []byte {
			if sent >= chunks {
				return nil
			}
			chunk := bytes.Repeat([]byte(fmt.Sprintf("%06d|", sent)), chunkSize/7+1)[:chunkSize]
			sent++
			return chunk
		},
	})
	if err != nil {
		t.Fatalf("StartSender: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("StartReceiver: %v", err)
	}
	if len(got) != chunks {
		t.Fatalf("delivered %d chunks, want %d", len(got), chunks)
	}
	for _, c := range got {
		if len(c) != chunkSize {
			t.Fatalf("chunk of %d bytes, want %d", len(c), chunkSize)
		}
	}
	// Compression actually happened on the wire.
	for _, s := range reg.Snapshots() {
		if s.Name == "send" && s.Bytes >= int64(chunks*chunkSize) {
			t.Fatalf("wire bytes %d not compressed below raw %d", s.Bytes, chunks*chunkSize)
		}
	}
}

func TestFacadeConfigRoundTrip(t *testing.T) {
	cfg := numastream.NodeConfig{
		Node: "n", Role: numastream.Receiver,
		Groups: []numastream.TaskGroup{
			{Type: numastream.Receive, Count: 2, Placement: numastream.PinTo(1)},
			{Type: numastream.Decompress, Count: 2, Placement: numastream.SplitAll()},
		},
	}
	data, err := numastream.EncodeConfig(cfg)
	if err != nil {
		t.Fatalf("EncodeConfig: %v", err)
	}
	back, err := numastream.DecodeConfig(data)
	if err != nil {
		t.Fatalf("DecodeConfig: %v", err)
	}
	if back.Node != "n" || back.Count(numastream.Receive) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	osCfg := numastream.GenerateOSBaseline(cfg)
	for _, g := range osCfg.Groups {
		if g.Placement.Mode != "os" {
			t.Fatalf("OS baseline group %+v", g)
		}
	}
}

func TestFacadeTopologyHelpers(t *testing.T) {
	host, _ := numastream.DiscoverTopology()
	if host.NumCPUs() < 1 {
		t.Fatal("DiscoverTopology returned no CPUs")
	}
	syn := numastream.SyntheticTopology(2, 8)
	if len(syn.Nodes) != 2 || syn.NumCPUs() != 16 {
		t.Fatalf("SyntheticTopology = %+v", syn)
	}
}
