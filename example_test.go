package numastream_test

import (
	"fmt"

	"numastream"
)

// ExampleGenerateReceiverConfig shows the configuration generator
// deriving the paper's gateway deployment from topology knowledge.
func ExampleGenerateReceiverConfig() {
	topo := numastream.TopologyInfo{Sockets: 2, CoresPerSocket: 16, NICSocket: 1}
	cfg, _ := numastream.GenerateReceiverConfig("lynxdtn", topo,
		numastream.GenerateOptions{Streams: 4, Compression: true})
	for _, g := range cfg.Groups {
		fmt.Printf("%s x%d on sockets %v\n", g.Type, g.Count, g.Placement.Sockets)
	}
	// Output:
	// receive x4 on sockets [1]
	// decompress x4 on sockets [0]
}

// ExampleGenerateSenderConfig sizes compression threads for a target
// rate (the paper's §1 arithmetic run backwards).
func ExampleGenerateSenderConfig() {
	topo := numastream.TopologyInfo{Sockets: 2, CoresPerSocket: 16, NICSocket: 1}
	cfg, _ := numastream.GenerateSenderConfig("updraft1", topo,
		numastream.GenerateOptions{Compression: true, TargetGbps: 37})
	fmt.Println("compress threads:", cfg.Count(numastream.Compress))
	// Output:
	// compress threads: 8
}

// ExampleGenerateOSBaseline rewrites a tuned configuration to the OS
// placement baseline used for the paper's §4.2 comparison.
func ExampleGenerateOSBaseline() {
	topo := numastream.TopologyInfo{Sockets: 2, CoresPerSocket: 16, NICSocket: 1}
	cfg, _ := numastream.GenerateReceiverConfig("gw", topo,
		numastream.GenerateOptions{Streams: 1})
	baseline := numastream.GenerateOSBaseline(cfg)
	fmt.Println(baseline.Groups[0].Placement.Mode)
	// Output:
	// os
}

// ExampleEncodeConfig round-trips a node configuration through the JSON
// wire format the tools exchange.
func ExampleEncodeConfig() {
	cfg := numastream.NodeConfig{
		Node: "gw", Role: numastream.Receiver,
		Groups: []numastream.TaskGroup{
			{Type: numastream.Receive, Count: 2, Placement: numastream.PinTo(1)},
		},
	}
	data, _ := numastream.EncodeConfig(cfg)
	back, _ := numastream.DecodeConfig(data)
	fmt.Println(back.Node, back.Count(numastream.Receive))
	// Output:
	// gw 2
}
