# Standard developer targets. CI runs `make check`.

GO ?= go

.PHONY: build test vet race check bench churn-drill report-drill stream-drill fleet-drill adapt-drill

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent transport/pipeline paths
# (reconnect, send horizons, quarantine accounting, queues), the buffer
# pool (lease aliasing, cross-domain steals), the telemetry layer
# (histograms, sampler, live endpoint), and the tracing layer
# (concurrent Add/WriteJSON, chunk framing), the snapshot-diff
# observer (scrape-while-streaming), and the fleet aggregator
# (Start/Stop ticker, concurrent Status/Alerts reads, HTTP scraping),
# and the adaptive placement controller (window callbacks racing pool
# resizes; the elastic-pool storm tests live in internal/pipeline).
race:
	$(GO) test -race ./internal/adapt/... ./internal/bufpool/... ./internal/chunk/... ./internal/faults/... ./internal/fleet/... ./internal/metrics/... ./internal/msgq/... ./internal/obs/... ./internal/pipeline/... ./internal/queue/... ./internal/telemetry/... ./internal/trace/...
	$(GO) test -race -run 'TestChurn|TestMultiHop|TestThousand|TestAdapt' ./internal/cluster/... ./internal/experiments/...

# Churn drill: the seeded netsim churn storm (multi-hop topology events,
# per-event fault attribution) and the real-mode relay kill/restart
# drill (exactly-once ledger: delivered == sent, dups dropped, no
# holes). These also run under `make test`; the named target is the
# quick way to replay just the storm.
churn-drill:
	$(GO) test -count=1 -run 'TestChurn|TestMultiHop|TestTopo|TestForwarder|TestLedger' ./internal/faults/... ./internal/cluster/... ./internal/pipeline/... ./internal/experiments/...

# Report drill: run the degraded-link simulation with self-diagnosis on
# and assert the report is well-formed — at least one window, and every
# window carries a verdict (the '"t0":' key count is per-window; the run
# bounds use "t0_run"/"t1_run" precisely so this grep stays exact).
report-drill:
	$(GO) run ./cmd/experiments -fig none -degraded -report report-drill.json
	@windows=$$(grep -c '"t0":' report-drill.json); \
	verdicts=$$(grep -c '"verdict":' report-drill.json); \
	if [ "$$windows" -eq 0 ] || [ "$$windows" -ne "$$verdicts" ]; then \
		echo "report-drill: $$windows windows vs $$verdicts verdicts"; exit 1; \
	fi; \
	echo "report-drill: $$windows windows, every one carries a verdict"

# Stream drill: the thousand-stream gateway soak. First a deterministic
# 256-stream loopback pass through the real sharded receive path — the
# exactly-once ledger must close on every stream (holes 0, abandoned 0)
# with the slowest stream at >= 50% of fair per-stream throughput. Then
# the 1000-stream simulated drill twice with the same seed: both runs
# must pass the same assertions and render byte-identical JSON.
stream-drill:
	$(GO) run ./cmd/loadgen --mode loopback --streams 256 --chunks 16 --chunk-bytes 16384 --seed 42 --assert
	$(GO) run ./cmd/loadgen --streams 1000 --seed 42 --json stream-drill-a.json --assert
	$(GO) run ./cmd/loadgen --streams 1000 --seed 42 --json stream-drill-b.json --assert
	cmp stream-drill-a.json stream-drill-b.json
	@echo "stream-drill: 256-stream loopback soak + byte-identical 1000-stream sim"

# Fleet drill: the cluster control tower. The multi-hop sim throttles
# the relay1-gateway uplink to 5% and the cluster verdict must name
# that hop (node + link) as dominant, with the fair-share SLO alert
# firing exactly once, resolving after the throttle lifts, and an
# alert-triggered pprof pair landing in fleet-profiles/. Then the
# churn storm must fire and resolve the hop-availability alert. The
# drill contract is asserted by Check() inside the binary.
fleet-drill:
	$(GO) run ./cmd/experiments -fig none -fleet -profile-dir fleet-profiles
	@ls fleet-profiles/*.pprof >/dev/null 2>&1 || { echo "fleet-drill: no profile artifacts captured"; exit 1; }
	@echo "fleet-drill: cluster verdicts checked, alert-triggered profiles captured"

# Adapt drill: the convergence contract for the adaptive placement
# controller. The deterministic sim drill starts from a deliberately bad
# config (one compress worker, everything pinned to one socket), lets
# the controller watch the self-diagnosis windows and resize/re-pin the
# elastic pools, and Check() inside the binary asserts convergence to
# within 10% of the hand-tuned config, the tuned config drawing zero
# actions, and the bad config staying visibly slow uncontrolled. Run
# twice with the same seed: the action logs (and the whole result JSON)
# must be byte-identical. The elastic-pool storm tests then replay the
# randomized Grow/Shrink churn against a live loopback pipeline under
# the race detector (exactly-once ledger, no worker leaks, abort never
# wedges mid-retire).
adapt-drill:
	$(GO) run ./cmd/experiments -fig none -adapt -adapt-json adapt-drill-a.json
	$(GO) run ./cmd/experiments -fig none -adapt -adapt-json adapt-drill-b.json
	cmp adapt-drill-a.json adapt-drill-b.json
	$(GO) test -race -count=1 -run 'TestPool|TestElastic|TestRetire|TestControls' ./internal/pipeline/...
	@echo "adapt-drill: byte-identical convergence runs + elastic storm clean under -race"

# The single CI entry point: build, vet, tests, race pass, churn drill,
# report drill, stream drill, fleet drill, adapt drill.
check: build vet test race churn-drill report-drill stream-drill fleet-drill adapt-drill

# Human-readable benchmark run over the root suite (the paper figures,
# the loopback pipeline, queues, LZ4).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Machine-readable benchmark run: test2json event stream, one JSON
# object per line, suitable for diffing across PRs (see BENCH_PR4.json
# for the first committed snapshot). BENCH_OUT overrides the file.
BENCH_OUT ?= bench.json
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -json > $(BENCH_OUT)

# Benchmark regression gate: re-run only the gated hot-path benchmarks
# and diff them against the committed baseline snapshot. Fails when a
# gated benchmark regresses more than 15% ns/op after host-speed
# normalization. Two defenses keep the gate meaningful on arbitrary CI
# hosts: benchdiff compares best-of-N across the -count samples (the
# minimum is the least-noise estimator — interference only ever slows a
# run down), and the queue spin benchmark calibrates for absolute host
# speed (its fixed, allocation-free work measures the machine, so the
# committed baseline from a faster box still gates a slower one).
# BENCH_BASE selects the baseline (the newest committed BENCH_PR*.json).
BENCH_BASE ?= BENCH_PR8.json
GATED_BENCHMARKS = BenchmarkLoopbackPipeline BenchmarkQueueThroughput
bench-gate:
	$(GO) test -run '^$$' -bench '^(BenchmarkLoopbackPipeline|BenchmarkQueueThroughput)$$' -count=6 -benchmem -json > bench-gate.json
	$(GO) run ./cmd/benchdiff -baseline $(BENCH_BASE) -current bench-gate.json -calibrate BenchmarkQueueThroughput $(GATED_BENCHMARKS)
