# Standard developer targets. CI runs `make check`.

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent transport/pipeline paths
# (reconnect, send horizons, quarantine accounting, queues).
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/faults/... ./internal/msgq/... ./internal/pipeline/... ./internal/queue/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem
