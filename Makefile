# Standard developer targets. CI runs `make check`.

GO ?= go

.PHONY: build test vet race check bench churn-drill

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent transport/pipeline paths
# (reconnect, send horizons, quarantine accounting, queues), the buffer
# pool (lease aliasing, cross-domain steals), the telemetry layer
# (histograms, sampler, live endpoint), and the tracing layer
# (concurrent Add/WriteJSON, chunk framing).
race:
	$(GO) test -race ./internal/bufpool/... ./internal/chunk/... ./internal/faults/... ./internal/metrics/... ./internal/msgq/... ./internal/pipeline/... ./internal/queue/... ./internal/telemetry/... ./internal/trace/...
	$(GO) test -race -run 'TestChurn|TestMultiHop' ./internal/cluster/... ./internal/experiments/...

# Churn drill: the seeded netsim churn storm (multi-hop topology events,
# per-event fault attribution) and the real-mode relay kill/restart
# drill (exactly-once ledger: delivered == sent, dups dropped, no
# holes). These also run under `make test`; the named target is the
# quick way to replay just the storm.
churn-drill:
	$(GO) test -count=1 -run 'TestChurn|TestMultiHop|TestTopo|TestForwarder|TestLedger' ./internal/faults/... ./internal/cluster/... ./internal/pipeline/... ./internal/experiments/...

# The single CI entry point: build, vet, tests, race pass, churn drill.
check: build vet test race churn-drill

# Human-readable benchmark run over the root suite (the paper figures,
# the loopback pipeline, queues, LZ4).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem

# Machine-readable benchmark run: test2json event stream, one JSON
# object per line, suitable for diffing across PRs (see BENCH_PR4.json
# for the first committed snapshot). BENCH_OUT overrides the file.
BENCH_OUT ?= bench.json
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -json > $(BENCH_OUT)

# Benchmark regression gate: re-run only the gated hot-path benchmarks
# and diff them against the committed baseline snapshot. Fails when
# either regresses by more than 15% ns/op. BENCH_BASE selects the
# baseline (the newest committed BENCH_PR*.json).
BENCH_BASE ?= BENCH_PR6.json
GATED_BENCHMARKS = BenchmarkLoopbackPipeline BenchmarkQueueThroughput
bench-gate:
	$(GO) test -run '^$$' -bench '^(BenchmarkLoopbackPipeline|BenchmarkQueueThroughput)$$' -benchmem -json > bench-gate.json
	$(GO) run ./cmd/benchdiff -baseline $(BENCH_BASE) -current bench-gate.json $(GATED_BENCHMARKS)
