# Standard developer targets. CI runs `make check`.

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the concurrent transport/pipeline paths
# (reconnect, send horizons, quarantine accounting, queues) and the
# telemetry layer (histograms, sampler, live endpoint).
race:
	$(GO) test -race ./internal/faults/... ./internal/metrics/... ./internal/msgq/... ./internal/pipeline/... ./internal/queue/... ./internal/telemetry/...

# The single CI entry point: build, vet, tests, race pass.
check: build vet test race

bench:
	$(GO) test -bench=. -benchmem
