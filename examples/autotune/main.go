// Autotune: the paper's future work (§6) — "adjust the allocation of
// cores to streaming software processes in response to real-time
// resource utilization". A gateway starts with an OS-placed
// configuration, the runtime observes per-core utilization and
// remote-memory traffic on the machine model, and the autotuner
// iteratively repairs the configuration until it converges on the
// NUMA-aware placement — with measured throughput improving at each
// step.
package main

import (
	"fmt"
	"log"

	"numastream/internal/hw"
	"numastream/internal/netsim"
	"numastream/internal/runtime"
	"numastream/internal/sim"
)

const chunkBytes = 11.0592e6

// measure runs one four-thread stream against the gateway model under
// cfg and returns throughput plus the observations the autotuner needs.
func measure(cfg runtime.NodeConfig) (float64, []runtime.CoreObservation, error) {
	eng := sim.NewEngine()
	snd := runtime.NewSimNode(hw.NewUpdraft(eng, "updraft1"), 1)
	rcv := runtime.NewSimNode(hw.NewLynxdtn(eng), 2)
	link := netsim.NewLink(eng, "aps", hw.BytesPerSec(100), 0.45e-3)
	path := netsim.NewPath(eng, snd.M, hw.DataNIC(snd.M), link, rcv.M, hw.DataNIC(rcv.M))

	st := &runtime.Stream{
		Spec:   runtime.StreamSpec{Name: "s", Chunks: 150, ChunkBytes: chunkBytes, Ratio: 2},
		Sender: snd,
		SenderCfg: runtime.NodeConfig{Node: "updraft1", Role: runtime.Sender,
			Groups: []runtime.TaskGroup{
				{Type: runtime.Compress, Count: 32, Placement: runtime.SplitAll()},
				{Type: runtime.Send, Count: 4, Placement: runtime.SplitAll()},
			}},
		Receiver:    rcv,
		ReceiverCfg: cfg,
		Path:        path,
	}
	if err := (&runtime.Runner{Eng: eng, Streams: []*runtime.Stream{st}}).Run(); err != nil {
		return 0, nil, err
	}

	var obs []runtime.CoreObservation
	for _, cs := range rcv.M.CoreStats(st.FinishTime) {
		remoteFrac := 0.0
		if cs.TotalBytes > 0 {
			remoteFrac = cs.RemoteBytes / cs.TotalBytes
		}
		obs = append(obs, runtime.CoreObservation{
			Core: cs.ID, Socket: cs.Socket,
			Utilization: cs.Utilization, RemoteFrac: remoteFrac,
		})
	}
	return hw.Gbps(st.EndToEndBps()), obs, nil
}

func main() {
	topo := runtime.TopologyInfo{Sockets: 2, CoresPerSocket: 16, NICSocket: 1}
	cfg := runtime.NodeConfig{Node: "lynxdtn", Role: runtime.Receiver,
		Groups: []runtime.TaskGroup{
			{Type: runtime.Receive, Count: 4, Placement: runtime.OS()},
			{Type: runtime.Decompress, Count: 8, Placement: runtime.OS()},
		}}

	fmt.Println("autotuning a gateway that starts with OS placement")
	for round := 1; ; round++ {
		gbps, obs, err := measure(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: %6.1f Gbps end-to-end  (receive=%v, decompress=%v)\n",
			round, gbps, placementOf(cfg, runtime.Receive), placementOf(cfg, runtime.Decompress))

		tuned, advice, err := runtime.Autotune(cfg, topo, obs)
		if err != nil {
			log.Fatal(err)
		}
		if len(advice) == 0 {
			fmt.Println("converged: no further placement changes advised")
			break
		}
		for _, a := range advice {
			fmt.Printf("  -> %s: %s\n", a.Group, a.Reason)
		}
		cfg = tuned
		if round > 5 {
			log.Fatal("autotuner did not converge")
		}
	}
}

func placementOf(cfg runtime.NodeConfig, t runtime.TaskType) string {
	g, ok := cfg.Group(t)
	if !ok {
		return "-"
	}
	switch g.Placement.Mode {
	case runtime.Pinned:
		return fmt.Sprintf("pinned%v", g.Placement.Sockets)
	default:
		return string(g.Placement.Mode)
	}
}
