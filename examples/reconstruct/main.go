// Reconstruct: the full Figure-1 story. A beamline node streams
// compressed projections of a sphere phantom through the runtime's
// pipeline to an analysis node, which extracts the central detector row
// from each delivered projection, assembles the sinogram, and runs
// filtered backprojection — turning "raw information into valuable
// insights" on the receiving side.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sort"
	"sync"

	"numastream"
	"numastream/internal/recon"
	"numastream/internal/tomo"
)

const (
	angles = 90
	width  = 192
	height = 96
	size   = 48 // reconstructed slice resolution
)

func main() {
	phantom := &tomo.Phantom{Spheres: []tomo.Sphere{
		{X: -0.35, Y: -0.15, Z: 0, R: 0.28, Density: 1.0},
		{X: 0.3, Y: 0.35, Z: 0, R: 0.2, Density: 1.6},
		{X: 0.15, Y: -0.4, Z: 0, R: 0.12, Density: 2.2},
	}}
	cfg := tomo.ProjectionConfig{
		Width: width, Height: height,
		NoiseSigma: 4, QuantStep: 4, Scale: 20000, Seed: 3,
	}

	host, _ := numastream.DiscoverTopology()
	topoInfo := numastream.TopologyInfo{
		Sockets:        len(host.Nodes),
		CoresPerSocket: len(host.Nodes[0].CPUs),
		NICSocket:      len(host.Nodes) - 1,
	}
	rcvCfg, err := numastream.GenerateReceiverConfig("analysis", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("beamline", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Receiver: collect the central row of every projection (keyed by
	// sequence number = angle index).
	type row struct {
		seq  uint64
		data []float64
	}
	var mu sync.Mutex
	var rows []row
	ready := make(chan string, 1)
	recvDone := make(chan error, 1)
	go func() {
		recvDone <- numastream.StartReceiver(numastream.ReceiverOptions{
			Cfg: rcvCfg, Topo: host, Bind: "127.0.0.1:0",
			Expect: angles, Ready: ready,
			Sink: func(c numastream.Chunk) error {
				centerRow := height / 2
				r := make([]float64, width)
				for u := 0; u < width; u++ {
					px := binary.LittleEndian.Uint16(c.Data[(centerRow*width+u)*2:])
					r[u] = float64(px) / cfg.Scale
				}
				mu.Lock()
				rows = append(rows, row{seq: c.Seq, data: r})
				mu.Unlock()
				return nil
			},
		})
	}()

	// Sender: one projection per angle.
	addr := <-ready
	next := 0
	err = numastream.StartSender(numastream.SenderOptions{
		Cfg: sndCfg, Topo: host, Peers: []string{addr},
		Source: func() []byte {
			if next >= angles {
				return nil
			}
			theta := math.Pi * float64(next) / angles
			next++
			return tomo.Projection(phantom, theta, cfg)
		},
	})
	if err != nil {
		log.Fatalf("sender: %v", err)
	}
	if err := <-recvDone; err != nil {
		log.Fatalf("receiver: %v", err)
	}

	// Assemble the sinogram in angle order and reconstruct.
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	sino := &recon.Sinogram{}
	for _, r := range rows {
		sino.Angles = append(sino.Angles, math.Pi*float64(r.seq)/angles)
		sino.Rows = append(sino.Rows, r.data)
	}
	img, err := recon.FBP(sino, size, recon.Hann)
	if err != nil {
		log.Fatalf("FBP: %v", err)
	}

	fmt.Printf("streamed %d projections (%dx%d) and reconstructed a %dx%d slice\n",
		angles, width, height, size, size)
	printSlice(img)
}

// printSlice renders the reconstruction as ASCII intensity art.
func printSlice(img []float64) {
	max := 0.0
	for _, v := range img {
		if v > max {
			max = v
		}
	}
	shades := []byte(" .:-=+*#%@")
	for y := 0; y < size; y++ {
		line := make([]byte, size)
		for x := 0; x < size; x++ {
			v := img[y*size+x]
			if v < 0 {
				v = 0
			}
			idx := int(v / (max + 1e-12) * float64(len(shades)-1))
			line[x] = shades[idx]
		}
		fmt.Println(string(line))
	}
}
