// Multistream: the paper's Figure 13 deployment on the machine models —
// four sender nodes (updraft1/2, polaris1/2) each running 32 compression
// and 4 sending threads, streaming concurrently into the lynxdtn gateway
// over a 200 Gbps path. The example contrasts the runtime's placement
// (receive threads pinned to the NIC's NUMA 1, decompression on NUMA 0)
// with leaving placement to the OS, reproducing Figure 14's comparison.
package main

import (
	"fmt"
	"log"

	"numastream/internal/experiments"
)

func main() {
	fmt.Println("Four concurrent streams into the gateway (simulated testbed)")
	fmt.Println()

	rt, err := experiments.Fig14MultiStream(experiments.ModeRuntime)
	if err != nil {
		log.Fatal(err)
	}
	osr, err := experiments.Fig14MultiStream(experiments.ModeOS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("runtime placement (receive@NUMA1, decompress@NUMA0):")
	for _, s := range rt.Streams {
		fmt.Printf("  %-10s network %6.2f Gbps   end-to-end %6.2f Gbps\n",
			s.Stream, s.NetGbps, s.E2EGbps)
	}
	fmt.Printf("  %-10s network %6.2f Gbps   end-to-end %6.2f Gbps\n\n",
		"total", rt.TotalNet, rt.TotalE2E)

	fmt.Println("OS placement (threads scheduled by the OS):")
	for _, s := range osr.Streams {
		fmt.Printf("  %-10s network %6.2f Gbps   end-to-end %6.2f Gbps\n",
			s.Stream, s.NetGbps, s.E2EGbps)
	}
	fmt.Printf("  %-10s network %6.2f Gbps   end-to-end %6.2f Gbps\n\n",
		"total", osr.TotalNet, osr.TotalE2E)

	fmt.Printf("runtime vs OS: %.2fX end-to-end (paper: 1.48X; 105.41/212.95 vs 70.98/143.3 Gbps)\n",
		rt.TotalE2E/osr.TotalE2E)
}
