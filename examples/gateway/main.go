// Gateway: Figure 1 end to end, in one process over loopback. Two
// instrument-side senders compress and push projections into the
// upstream gateway, which — exactly as the figure describes —
// accumulates and load-balances the still-compressed chunks, forwarding
// them to two HPC-side consumers that decompress and verify.
//
//	instrument-1 ─┐                    ┌─► hpc-1 (decompress, verify)
//	              ├─► gateway (relay) ─┤
//	instrument-2 ─┘                    └─► hpc-2 (decompress, verify)
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"numastream"
)

const (
	perSender = 16
	chunkSize = 128 << 10
	senders   = 2
	consumers = 2
	total     = senders * perSender
)

func main() {
	host, _ := numastream.DiscoverTopology()
	topoInfo := numastream.TopologyInfo{
		Sockets:        len(host.Nodes),
		CoresPerSocket: len(host.Nodes[0].CPUs),
		NICSocket:      len(host.Nodes) - 1,
	}
	rcvCfg, err := numastream.GenerateReceiverConfig("node", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}
	gwCfg, err := numastream.GenerateReceiverConfig("gateway", topoInfo,
		numastream.GenerateOptions{Streams: senders, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("instrument", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}

	// HPC consumers.
	var mu sync.Mutex
	perConsumer := make([]int, consumers)
	verified := 0
	stop := make(chan struct{})
	consumerDone := make([]chan error, consumers)
	consumerAddrs := make([]string, consumers)
	for i := 0; i < consumers; i++ {
		i := i
		ready := make(chan string, 1)
		consumerDone[i] = make(chan error, 1)
		go func() {
			consumerDone[i] <- numastream.StartReceiver(numastream.ReceiverOptions{
				Cfg: rcvCfg, Topo: host, Bind: "127.0.0.1:0",
				Stop: stop, Ready: ready,
				Sink: func(c numastream.Chunk) error {
					if !bytes.Equal(c.Data, payload(c.Stream, c.Seq)) {
						return fmt.Errorf("stream %d chunk %d corrupted", c.Stream, c.Seq)
					}
					mu.Lock()
					perConsumer[i]++
					verified++
					if verified == total {
						close(stop)
					}
					mu.Unlock()
					return nil
				},
			})
		}()
		consumerAddrs[i] = <-ready
	}

	// The gateway: accumulate + load-balance + forward, no decode.
	gwReady := make(chan string, 1)
	gwMetrics := numastream.NewRegistry()
	gwDone := make(chan error, 1)
	go func() {
		gwDone <- numastream.StartForwarder(numastream.ForwarderOptions{
			Cfg: gwCfg, Topo: host, Bind: "127.0.0.1:0",
			Downstream:    consumerAddrs,
			MinDownstream: consumers,
			Expect:        total,
			Metrics:       gwMetrics,
			Ready:         gwReady,
		})
	}()
	gwAddr := <-gwReady

	// Instrument-side senders, one stream each.
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			err := numastream.StartSender(numastream.SenderOptions{
				Cfg: sndCfg, Topo: host, Peers: []string{gwAddr},
				StreamID: uint32(s),
				Source: func() []byte {
					if i >= perSender {
						return nil
					}
					p := payload(uint32(s), uint64(i))
					i++
					return p
				},
			})
			if err != nil {
				log.Fatalf("sender %d: %v", s, err)
			}
		}()
	}
	wg.Wait()
	if err := <-gwDone; err != nil {
		log.Fatalf("gateway: %v", err)
	}
	for i := 0; i < consumers; i++ {
		if err := <-consumerDone[i]; err != nil {
			log.Fatalf("consumer %d: %v", i, err)
		}
	}

	fmt.Printf("%d chunks from %d instruments relayed through the gateway and verified\n",
		total, senders)
	fmt.Printf("downstream balance: hpc-1=%d hpc-2=%d chunks\n", perConsumer[0], perConsumer[1])
	fmt.Printf("gateway:\n%s", gwMetrics.String())
}

// payload builds a deterministic, compressible chunk unique to
// (stream, seq) so consumers can verify end-to-end integrity.
func payload(stream uint32, seq uint64) []byte {
	pat := []byte(fmt.Sprintf("instrument-%d frame %06d |", stream, seq))
	return bytes.Repeat(pat, chunkSize/len(pat)+1)[:chunkSize]
}
