// Quickstart: stream 32 compressible chunks from an in-process sender to
// an in-process receiver over loopback TCP, with LZ4 compression on the
// way out and decompression on the way in — the minimal end-to-end use
// of the public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"numastream"
)

const (
	chunks    = 32
	chunkSize = 256 << 10
)

func main() {
	// 1. Describe the hardware. On a real two-socket host,
	// DiscoverTopology reads sysfs; the generator additionally needs to
	// know which NUMA domain the data NIC hangs off.
	host, _ := numastream.DiscoverTopology()
	gen := numastream.TopologyInfo{Sockets: 2, CoresPerSocket: 16, NICSocket: 1}
	if len(host.Nodes) < 2 {
		// Laptop/CI fallback: single-domain topology, placement is
		// moot but the pipeline is identical.
		gen = numastream.TopologyInfo{Sockets: 1, CoresPerSocket: host.NumCPUs(), NICSocket: 0}
		host = numastream.SyntheticTopology(1, host.NumCPUs())
	}

	// 2. Generate the two node configurations: receive threads pinned
	// to the NIC domain, decompression opposite, compression wherever
	// cores are (the paper's placement rules).
	rcvCfg, err := numastream.GenerateReceiverConfig("gateway", gen,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("instrument", gen,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the receiver, then stream into it.
	ready := make(chan string, 1)
	var mu sync.Mutex
	received := 0
	recvMetrics := numastream.NewRegistry()
	recvDone := make(chan error, 1)
	go func() {
		recvDone <- numastream.StartReceiver(numastream.ReceiverOptions{
			Cfg:     rcvCfg,
			Topo:    host,
			Bind:    "127.0.0.1:0",
			Expect:  chunks,
			Ready:   ready,
			Metrics: recvMetrics,
			Sink: func(c numastream.Chunk) error {
				mu.Lock()
				received++
				mu.Unlock()
				return nil
			},
		})
	}()

	addr := <-ready
	sent := 0
	sndMetrics := numastream.NewRegistry()
	err = numastream.StartSender(numastream.SenderOptions{
		Cfg:     sndCfg,
		Topo:    host,
		Peers:   []string{addr},
		Metrics: sndMetrics,
		Source: func() []byte {
			if sent >= chunks {
				return nil
			}
			chunk := bytes.Repeat([]byte(fmt.Sprintf("frame %05d |", sent)), chunkSize/13+1)[:chunkSize]
			sent++
			return chunk
		},
	})
	if err != nil {
		log.Fatalf("sender: %v", err)
	}
	if err := <-recvDone; err != nil {
		log.Fatalf("receiver: %v", err)
	}

	fmt.Printf("streamed %d chunks of %d KiB over %s\n", received, chunkSize>>10, addr)
	fmt.Printf("sender:\n%s", sndMetrics.String())
	fmt.Printf("receiver:\n%s", recvMetrics.String())
}
