// Tomostream: the paper's motivating workload end to end. Synthetic
// X-ray projections of a sphere phantom (the tomobank-spheres stand-in)
// are written into a chunked dataset container, streamed through the
// compression pipeline over loopback TCP, decompressed at the gateway
// and verified bit-for-bit — with the achieved LZ4 ratio and stage
// throughputs reported.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"numastream"
	"numastream/internal/chunk"
	"numastream/internal/tomo"
)

const projections = 24

func main() {
	// Generate a small-detector scan (1/8 scale keeps the example
	// quick; pass the full DefaultProjectionConfig for 11.06 MB
	// chunks).
	cfg := tomo.DefaultProjectionConfig()
	cfg.Width /= 8
	cfg.Height /= 8
	gen := tomo.NewGenerator(tomo.RandomPhantom(7, 60), cfg, projections)

	// Store the scan in the chunked container (the HDF5 stand-in), as
	// the beamline DAQ would.
	var dataset bytes.Buffer
	cw, err := chunk.NewWriter(&dataset)
	if err != nil {
		log.Fatal(err)
	}
	cw.SetAttr("detector", fmt.Sprintf("%dx%d", cfg.Width, cfg.Height))
	cw.SetAttr("dtype", "uint16")
	for i := 0; i < projections; i++ {
		if err := cw.WriteChunk(gen.Next()); err != nil {
			log.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		log.Fatal(err)
	}
	reader, err := chunk.NewReader(bytes.NewReader(dataset.Bytes()), int64(dataset.Len()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d projections, %.1f MiB total\n",
		reader.NumChunks(), float64(dataset.Len())/(1<<20))

	// Stream it.
	host, _ := numastream.DiscoverTopology()
	topoInfo := numastream.TopologyInfo{Sockets: len(host.Nodes),
		CoresPerSocket: len(host.Nodes[0].CPUs), NICSocket: len(host.Nodes) - 1}
	rcvCfg, err := numastream.GenerateReceiverConfig("gateway", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}
	sndCfg, err := numastream.GenerateSenderConfig("beamline", topoInfo,
		numastream.GenerateOptions{Streams: 1, Compression: true, SendThreads: 2})
	if err != nil {
		log.Fatal(err)
	}

	ready := make(chan string, 1)
	var mu sync.Mutex
	got := make(map[uint64][]byte)
	recvDone := make(chan error, 1)
	recvMetrics := numastream.NewRegistry()
	go func() {
		recvDone <- numastream.StartReceiver(numastream.ReceiverOptions{
			Cfg:     rcvCfg,
			Topo:    host,
			Bind:    "127.0.0.1:0",
			Expect:  projections,
			Ready:   ready,
			Metrics: recvMetrics,
			Sink: func(c numastream.Chunk) error {
				mu.Lock()
				defer mu.Unlock()
				data := make([]byte, len(c.Data))
				copy(data, c.Data)
				got[c.Seq] = data
				return nil
			},
		})
	}()

	addr := <-ready
	next := 0
	sndMetrics := numastream.NewRegistry()
	err = numastream.StartSender(numastream.SenderOptions{
		Cfg:     sndCfg,
		Topo:    host,
		Peers:   []string{addr},
		Metrics: sndMetrics,
		Source: func() []byte {
			if next >= reader.NumChunks() {
				return nil
			}
			p, err := reader.ReadChunk(next)
			if err != nil {
				log.Fatalf("reading chunk %d: %v", next, err)
			}
			next++
			return p
		},
	})
	if err != nil {
		log.Fatalf("sender: %v", err)
	}
	if err := <-recvDone; err != nil {
		log.Fatalf("receiver: %v", err)
	}

	// Verify every projection survived compression, transport and
	// decompression bit-for-bit.
	for i := 0; i < projections; i++ {
		want, err := reader.ReadChunk(i)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got[uint64(i)], want) {
			log.Fatalf("projection %d corrupted in flight", i)
		}
	}
	fmt.Printf("all %d projections verified bit-for-bit\n", projections)

	var raw, wire int64
	for _, s := range sndMetrics.Snapshots() {
		switch s.Name {
		case "compress":
			raw = s.Bytes
		case "send":
			wire = s.Bytes
		}
	}
	if wire > 0 {
		fmt.Printf("LZ4 ratio on the wire: %.2f:1 (paper reports ~2:1)\n", float64(raw)/float64(wire))
	}
	fmt.Printf("sender:\n%s", sndMetrics.String())
	fmt.Printf("receiver:\n%s", recvMetrics.String())
}
