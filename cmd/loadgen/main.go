// Command loadgen drives the thousand-stream gateway drills: a
// seedable, rate-limited stream fleet against the sharded receive
// path, in either deterministic simulation or real loopback execution.
//
// Usage:
//
//	loadgen --streams 1000 --seed 42                 # sim: byte-identical per seed
//	loadgen --mode loopback --streams 256 --assert   # real sockets, fairness-checked
//	loadgen --streams 100 --fault-plan 'reset@w10, stall@1MB:50ms, seed=7'
//
// The sim renders the same bytes for the same flags on any machine:
// no wall clock is read, so --json output can be diffed across runs
// and hosts. Loopback runs the real pipeline (real senders, sockets,
// shards, credits, ledger); its timings are wall-clock, its accounting
// is still exact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"numastream/internal/experiments"
	"numastream/internal/faults"
)

func main() {
	mode := flag.String("mode", "sim", "sim (deterministic virtual time) | loopback (real sockets)")
	streams := flag.Int("streams", 1000, "concurrent streams")
	qps := flag.Float64("qps", 100, "per-stream chunk production rate")
	duration := flag.Duration("duration", time.Second, "per-stream production span; chunks per stream = qps * duration unless -chunks is set")
	chunks := flag.Int("chunks", 0, "chunks per stream (overrides -duration)")
	chunkBytes := flag.Int("chunk-bytes", 64<<10, "bytes per chunk")
	maxConc := flag.Int("max-concurrency", 0, "cap on concurrently active streams; 0 = all at once")
	seed := flag.Int64("seed", 1, "RNG seed: jitter, fault victims")
	faultPlan := flag.String("fault-plan", "", "fault plan DSL: 'reset@w10, stall@1MB:50ms, corrupt@w5:bit3, refuse:0-2, seed=7'")
	shards := flag.Int("shards", 0, "gateway receive shards; 0 = mode default (sim: 4, loopback: NUMA-aligned)")
	credit := flag.Int("credit", 0, "per-stream credit window; 0 = default (8)")
	maxStreams := flag.Int("max-streams", 0, "admission cap; 0 = unlimited (sim only)")
	streamCap := flag.Int("stream-cap", 0, "metrics registry per-stream series cap; 0 = default (64)")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file ('-' = stdout, replacing the table)")
	assertRun := flag.Bool("assert", false, "exit nonzero unless every ledger closed and -min-share held")
	minShare := flag.Float64("min-share", 0.5, "fairness floor for -assert: slowest stream >= this share of fair per-stream throughput")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	cfg := experiments.ThousandStreamConfig{
		Streams:        *streams,
		Chunks:         *chunks,
		ChunkBytes:     *chunkBytes,
		QPS:            *qps,
		Shards:         *shards,
		Credit:         *credit,
		MaxStreams:     *maxStreams,
		StreamCap:      *streamCap,
		MaxConcurrency: *maxConc,
		Seed:           *seed,
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = int(*qps * duration.Seconds())
		if cfg.Chunks < 1 {
			cfg.Chunks = 1
		}
	}
	if *faultPlan != "" {
		plan, err := faults.ParseFaultPlan(*faultPlan)
		if err != nil {
			fail(err)
		}
		cfg.Plan = plan
	}

	var (
		res experiments.ThousandStreamResult
		err error
	)
	switch *mode {
	case "sim":
		res, err = experiments.ThousandStreamSim(cfg)
	case "loopback":
		res, err = experiments.ThousandStreamLoopback(cfg)
	default:
		fail(fmt.Errorf("unknown -mode %q (want sim or loopback)", *mode))
	}
	if err != nil {
		fail(err)
	}

	if *jsonPath != "-" {
		fmt.Print(experiments.FormatThousandStream(res))
	}
	if *jsonPath != "" {
		b, err := res.JSON()
		if err != nil {
			fail(err)
		}
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fail(err)
		}
	}
	if *assertRun {
		if err := res.Check(*minShare); err != nil {
			fail(err)
		}
		fmt.Printf("loadgen: PASS — %d streams, ledger closed, min share %.0f%% >= %.0f%%\n",
			res.Admitted, res.MinShare*100, *minShare*100)
	}
}
