// Command loadgen drives the thousand-stream gateway drills: a
// seedable, rate-limited stream fleet against the sharded receive
// path, in either deterministic simulation or real loopback execution.
//
// Usage:
//
//	loadgen --streams 1000 --seed 42                 # sim: byte-identical per seed
//	loadgen --mode loopback --streams 256 --assert   # real sockets, fairness-checked
//	loadgen --streams 100 --fault-plan 'reset@w10, stall@1MB:50ms, seed=7'
//	loadgen --mode loopback --streams 256 --telemetry-addr :9200 \
//	    --slo 'fair_share>=0.5,holes<=0' --cluster-report soak-cluster.md
//
// The sim renders the same bytes for the same flags on any machine:
// no wall clock is read, so --json output can be diffed across runs
// and hosts. Loopback runs the real pipeline (real senders, sockets,
// shards, credits, ledger); its timings are wall-clock, its accounting
// is still exact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"numastream/internal/adapt"
	"numastream/internal/experiments"
	"numastream/internal/faults"
	"numastream/internal/fleet"
	"numastream/internal/metrics"
	"numastream/internal/numa"
	"numastream/internal/obs"
	"numastream/internal/pipeline"
	"numastream/internal/telemetry"
)

func main() {
	mode := flag.String("mode", "sim", "sim (deterministic virtual time) | loopback (real sockets)")
	streams := flag.Int("streams", 1000, "concurrent streams")
	qps := flag.Float64("qps", 100, "per-stream chunk production rate")
	duration := flag.Duration("duration", time.Second, "per-stream production span; chunks per stream = qps * duration unless -chunks is set")
	chunks := flag.Int("chunks", 0, "chunks per stream (overrides -duration)")
	chunkBytes := flag.Int("chunk-bytes", 64<<10, "bytes per chunk")
	maxConc := flag.Int("max-concurrency", 0, "cap on concurrently active streams; 0 = all at once")
	seed := flag.Int64("seed", 1, "RNG seed: jitter, fault victims")
	faultPlan := flag.String("fault-plan", "", "fault plan DSL: 'reset@w10, stall@1MB:50ms, corrupt@w5:bit3, refuse:0-2, seed=7'")
	shards := flag.Int("shards", 0, "gateway receive shards; 0 = mode default (sim: 4, loopback: NUMA-aligned)")
	credit := flag.Int("credit", 0, "per-stream credit window; 0 = default (8)")
	maxStreams := flag.Int("max-streams", 0, "admission cap; 0 = unlimited (sim only)")
	streamCap := flag.Int("stream-cap", 0, "metrics registry per-stream series cap; 0 = default (64)")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file ('-' = stdout, replacing the table)")
	assertRun := flag.Bool("assert", false, "exit nonzero unless every ledger closed and -min-share held")
	minShare := flag.Float64("min-share", 0.5, "fairness floor for -assert: slowest stream >= this share of fair per-stream throughput")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live /metrics, /status, /cluster and /alerts on this address while a loopback soak runs (loopback mode only)")
	statusInterval := flag.Duration("status-interval", 500*time.Millisecond, "obs snapshot interval for -telemetry-addr; drives how fresh /status and /cluster stay during the soak")
	sloSpec := flag.String("slo", "", "SLO clauses for -telemetry-addr, e.g. 'e2e_p99_ms<=250,fair_share>=0.5,holes<=0'")
	clusterReport := flag.String("cluster-report", "", "write the end-of-soak cluster report to this file (markdown when it ends in .md, JSON otherwise)")
	adaptOn := flag.Bool("adapt", false, "run the adaptive placement controller against the loopback gateway: it watches the soak's self-diagnosis windows and resizes the elastic receive/decompress pools live; prints the action log at exit (loopback mode only)")
	nicDomain := flag.Int("nic-domain", -1, "NUMA domain owning the data NIC for -adapt wire-bound migration (-1 = unknown, migration disabled)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	cfg := experiments.ThousandStreamConfig{
		Streams:        *streams,
		Chunks:         *chunks,
		ChunkBytes:     *chunkBytes,
		QPS:            *qps,
		Shards:         *shards,
		Credit:         *credit,
		MaxStreams:     *maxStreams,
		StreamCap:      *streamCap,
		MaxConcurrency: *maxConc,
		Seed:           *seed,
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = int(*qps * duration.Seconds())
		if cfg.Chunks < 1 {
			cfg.Chunks = 1
		}
	}
	if *faultPlan != "" {
		plan, err := faults.ParseFaultPlan(*faultPlan)
		if err != nil {
			fail(err)
		}
		cfg.Plan = plan
	}

	// Live telemetry rides the loopback soak: the drill records into a
	// shared registry, an obs engine snapshots it on a wall-clock
	// cadence, and a single-node fleet aggregator layers SLO alerts on
	// top — so /status, /cluster and /alerts answer live mid-soak. The
	// sim runs in virtual time with nothing live to scrape, so these
	// flags are loopback-only.
	liveTelemetry := *telemetryAddr != "" || *sloSpec != "" || *clusterReport != "" || *adaptOn
	var (
		obsEng *obs.Engine
		agg    *fleet.Aggregator
		ctrl   *adapt.Controller
	)
	if liveTelemetry {
		if *mode != "loopback" {
			fail(fmt.Errorf("-telemetry-addr/-slo/-cluster-report/-adapt need -mode loopback (the sim runs in virtual time)"))
		}
		var slos []fleet.SLO
		if *sloSpec != "" {
			parsed, err := fleet.ParseSLOs(*sloSpec)
			if err != nil {
				fail(err)
			}
			slos = parsed
		}
		reg := metrics.NewRegistry()
		cfg.Registry = reg
		obsOpts := obs.Options{Node: "thousand-gw", Interval: *statusInterval}
		if *adaptOn {
			// The gateway runs receive 4 / decompress 2; let adaptation
			// refine the sizing up to twice that, never past it.
			cfg.Controls = pipeline.NewControls()
			pol := adapt.DefaultPolicy()
			pol.NICDomain = *nicDomain
			if topo, ok := numa.Discover(); ok {
				for _, n := range topo.Nodes {
					pol.Domains = append(pol.Domains, n.ID)
				}
			}
			pol.MaxWorkers = map[string]int{"receive": 8, "decompress": 4}
			ctrl = adapt.New(pol, cfg.Controls)
			obsOpts.OnWindow = ctrl.OnWindow
		}
		obsEng = obs.NewEngine(reg, obsOpts)
		if ctrl != nil {
			ctrl.BindEngine(obsEng)
		}
		obsEng.Start()
		agg = fleet.New(fleet.Options{Fleet: "loadgen", Interval: *statusInterval, SLOs: slos})
		agg.AddSource(fleet.EngineSource("thousand-gw", fleet.RoleGateway, obsEng))
		agg.Start()
		if *telemetryAddr != "" {
			srv, err := telemetry.ServeWith(*telemetryAddr, reg, telemetry.Options{Obs: obsEng, Fleet: agg, Adapt: ctrl})
			if err != nil {
				fail(err)
			}
			defer srv.Close()
			fmt.Printf("loadgen: telemetry on http://%s (/metrics, /status, /cluster, /alerts)\n", srv.Addr())
		}
	}

	var (
		res experiments.ThousandStreamResult
		err error
	)
	switch *mode {
	case "sim":
		res, err = experiments.ThousandStreamSim(cfg)
	case "loopback":
		res, err = experiments.ThousandStreamLoopback(cfg)
	default:
		fail(fmt.Errorf("unknown -mode %q (want sim or loopback)", *mode))
	}
	if err != nil {
		fail(err)
	}

	if liveTelemetry {
		obsEng.Stop()
		agg.Stop()
		for tick := 0; tick < 2 && len(agg.Windows()) == 0; tick++ {
			// A short soak can finish inside one interval; the first
			// tick seeds the aggregator, the second builds a window,
			// so the report always has something to say.
			obsEng.Tick()
			agg.Tick()
		}
		if *clusterReport != "" {
			rep := agg.Report()
			if err := fleet.WriteReportFile(*clusterReport, rep); err != nil {
				fail(err)
			}
			fmt.Printf("loadgen: cluster report written to %s (dominant: %s)\n", *clusterReport, rep.Dominant)
		}
	}

	if ctrl != nil {
		actions := ctrl.Actions()
		fmt.Printf("loadgen: adaptive placement made %d actions\n", len(actions))
		if len(actions) > 0 {
			fmt.Print(adapt.FormatActions(actions))
		}
	}
	if *jsonPath != "-" {
		fmt.Print(experiments.FormatThousandStream(res))
	}
	if *jsonPath != "" {
		b, err := res.JSON()
		if err != nil {
			fail(err)
		}
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fail(err)
		}
	}
	if *assertRun {
		if err := res.Check(*minShare); err != nil {
			fail(err)
		}
		fmt.Printf("loadgen: PASS — %d streams, ledger closed, min share %.0f%% >= %.0f%%\n",
			res.Admitted, res.MinShare*100, *minShare*100)
	}
}
