// Command benchdiff compares two `go test -bench -json` snapshots and
// fails when a gated benchmark regressed beyond the threshold. It is
// the CI benchmark gate:
//
//	make bench-json BENCH_OUT=bench.json
//	benchdiff -baseline BENCH_PR4.json -current bench.json \
//	    BenchmarkLoopbackPipeline BenchmarkQueueThroughput
//
// Exit status: 0 when every gated benchmark is present in both files
// and within the regression budget, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"numastream/internal/benchcmp"
)

func main() {
	baseline := flag.String("baseline", "", "baseline test2json snapshot (required)")
	current := flag.String("current", "", "current test2json snapshot (required)")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed ns/op regression as a fraction (0.15 = +15%)")
	calibrate := flag.String("calibrate", "", "host-speed calibration benchmark: gated ns/op are normalized by this benchmark's current/baseline ratio, so a committed baseline stays comparable across CI hosts")
	flag.Parse()

	names := flag.Args()
	if *baseline == "" || *current == "" || len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline old.json -current new.json [-max-regress 0.15] BenchmarkName...")
		os.Exit(2)
	}

	base, err := parseFile(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fatal(err)
	}

	var (
		deltas   []benchcmp.Delta
		failures []string
	)
	if *calibrate != "" {
		deltas, failures = benchcmp.CompareCalibrated(base, cur, names, *calibrate, *maxRegress)
	} else {
		deltas, failures = benchcmp.Compare(base, cur, names, *maxRegress)
	}
	for _, d := range deltas {
		fmt.Println(d)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within +%.0f%% of baseline\n", len(deltas), *maxRegress*100)
}

func parseFile(path string) (map[string]benchcmp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := benchcmp.ParseTest2JSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
