// Command nsdata generates and inspects chunked scientific dataset
// containers — the DAQ-side tooling around the runtime. A generated
// dataset holds synthetic tomography projections (one per chunk) plus
// metadata, and can be fed to cmd/numastream or the examples.
//
// Usage:
//
//	nsdata generate -out scan.nscf -angles 90 -scale 8 -spheres 60
//	nsdata info scan.nscf
//	nsdata verify scan.nscf
//	nsdata ratio scan.nscf          # per-chunk and average LZ4 ratio
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"numastream/internal/chunk"
	"numastream/internal/lz4"
	"numastream/internal/tomo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "generate":
		generate(os.Args[2:])
	case "info":
		withReader(os.Args[2:], info)
	case "verify":
		withReader(os.Args[2:], verify)
	case "ratio":
		withReader(os.Args[2:], ratio)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nsdata generate|info|verify|ratio ...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nsdata: %v\n", err)
	os.Exit(1)
}

func generate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	out := fs.String("out", "scan.nscf", "output container path")
	angles := fs.Int("angles", 90, "projections per revolution")
	scale := fs.Int("scale", 8, "detector downscale factor (1 = full 11.06 MB chunks)")
	spheres := fs.Int("spheres", 60, "phantom sphere count")
	seed := fs.Int64("seed", 1, "phantom seed")
	fs.Parse(args)

	cfg := tomo.DefaultProjectionConfig()
	if *scale > 1 {
		cfg.Width /= *scale
		cfg.Height /= *scale
	}
	gen := tomo.NewGenerator(tomo.RandomPhantom(*seed, *spheres), cfg, *angles)

	w, f, err := chunk.CreateFile(*out)
	if err != nil {
		fatal(err)
	}
	w.SetAttr("detector", fmt.Sprintf("%dx%d", cfg.Width, cfg.Height))
	w.SetAttr("dtype", "uint16")
	w.SetAttr("angles", fmt.Sprintf("%d", *angles))
	total := 0
	for i := 0; i < *angles; i++ {
		p := gen.Next()
		total += len(p)
		if err := w.WriteChunk(p); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d projections (%dx%d uint16), %.1f MiB\n",
		*out, *angles, cfg.Width, cfg.Height, float64(total)/(1<<20))
}

func withReader(args []string, fn func(path string, r *chunk.Reader)) {
	if len(args) != 1 {
		usage()
	}
	r, f, err := chunk.OpenFile(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fn(args[0], r)
}

func info(path string, r *chunk.Reader) {
	fmt.Printf("%s: %d chunks\n", path, r.NumChunks())
	for _, key := range []string{"detector", "dtype", "angles"} {
		if v, ok := r.Attr(key); ok {
			fmt.Printf("  %-10s %s\n", key, v)
		}
	}
	var total, min, max int64
	min = math.MaxInt64
	for i := 0; i < r.NumChunks(); i++ {
		size, err := r.ChunkSize(i)
		if err != nil {
			fatal(err)
		}
		total += size
		if size < min {
			min = size
		}
		if size > max {
			max = size
		}
	}
	if r.NumChunks() > 0 {
		fmt.Printf("  chunks: %d bytes min, %d max, %.1f MiB total\n", min, max, float64(total)/(1<<20))
	}
}

func verify(path string, r *chunk.Reader) {
	for i := 0; i < r.NumChunks(); i++ {
		if _, err := r.ReadChunk(i); err != nil {
			fatal(fmt.Errorf("chunk %d: %w", i, err))
		}
	}
	fmt.Printf("%s: all %d chunk CRCs verified\n", path, r.NumChunks())
}

func ratio(path string, r *chunk.Reader) {
	var rawTotal, packedTotal int
	for i := 0; i < r.NumChunks(); i++ {
		p, err := r.ReadChunk(i)
		if err != nil {
			fatal(err)
		}
		packed := lz4.Compress(p)
		rawTotal += len(p)
		packedTotal += len(packed)
		if i < 5 {
			fmt.Printf("  chunk %3d: %.2f:1\n", i, float64(len(p))/float64(len(packed)))
		}
	}
	if r.NumChunks() > 5 {
		fmt.Printf("  ... (%d more)\n", r.NumChunks()-5)
	}
	if packedTotal > 0 {
		fmt.Printf("%s: average LZ4 ratio %.2f:1 (paper: ~2:1)\n",
			path, float64(rawTotal)/float64(packedTotal))
	}
}
