// Command topoinfo prints this host's NUMA topology — the knowledge base
// the runtime configuration generator consumes.
package main

import (
	"fmt"

	"numastream/internal/numa"
)

func main() {
	topo, real := numa.Discover()
	if real {
		fmt.Println("source: sysfs (/sys/devices/system/node)")
	} else {
		fmt.Println("source: synthetic fallback (no NUMA sysfs on this host)")
	}
	fmt.Printf("nodes: %d, logical CPUs: %d\n", len(topo.Nodes), topo.NumCPUs())
	for _, n := range topo.Nodes {
		mem := "unknown"
		if n.MemBytes > 0 {
			mem = fmt.Sprintf("%.1f GiB", float64(n.MemBytes)/(1<<30))
		}
		fmt.Printf("  node %d: %d cpus %v, memory %s\n", n.ID, len(n.CPUs), n.CPUs, mem)
	}
	if len(topo.Distances) > 0 {
		fmt.Println("distances (SLIT):")
		for i, row := range topo.Distances {
			fmt.Printf("  node %d: %v\n", i, row)
		}
	}
}
