// Command numastream runs one node of the streaming runtime over real
// TCP, driven by a JSON configuration file from confgen. A sender node
// generates synthetic tomography projections (or patterned chunks),
// compresses them per its config, and pushes them to the receiver; the
// receiver pulls, decompresses and reports throughput — the real-
// execution counterpart of the paper's deployment.
//
// Usage:
//
//	numastream -config receiver.json -bind :5555 -chunks 64
//	numastream -config sender.json -peers host:5555 -chunks 64
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"numastream/internal/adapt"
	"numastream/internal/faults"
	"numastream/internal/fleet"
	"numastream/internal/metrics"
	"numastream/internal/numa"
	"numastream/internal/obs"
	"numastream/internal/pipeline"
	"numastream/internal/runtime"
	"numastream/internal/telemetry"
	"numastream/internal/tomo"
	"numastream/internal/trace"
)

func main() {
	var (
		configPath  = flag.String("config", "", "node config JSON (required)")
		peers       = flag.String("peers", "", "comma-separated receiver addresses (sender)")
		bind        = flag.String("bind", ":5555", "listen address (receiver)")
		chunks      = flag.Int("chunks", 32, "chunks to stream / expect")
		scale       = flag.Int("scale", 4, "detector downscale factor (1 = full 11.06 MB chunks)")
		synthetic   = flag.Bool("synthetic", false, "use patterned chunks instead of tomography projections")
		serve       = flag.Bool("serve", false, "receiver: serve until interrupted instead of expecting -chunks")
		tracePath   = flag.String("trace", "", "write a Chrome trace of this node's workers to the file; on a receiver fed by a -trace-wire sender this is the merged cross-host journey trace")
		traceWire   = flag.Bool("trace-wire", false, "sender: ship a per-chunk trace context on every frame so a new-protocol receiver can stitch cross-host chunk journeys (no effect against legacy receivers)")
		bufpoolMode = flag.String("bufpool", "on", "NUMA-aware buffer pooling on the hot path: on | off (off = per-chunk allocation, the pre-pooling behaviour; for A/B runs and leak triage)")

		// Adaptive placement (the feedback controller).
		adaptOn   = flag.Bool("adapt", false, "enable the online adaptive placement controller: it watches the self-diagnosis windows and grows/shrinks/migrates the elastic worker pools at runtime; the action log lands on /status?actions=1 and in -report")
		nicDomain = flag.Int("nic-domain", -1, "NUMA domain owning the data NIC, the target of wire-bound send migration (-1 = unknown, migration disabled)")

		// Telemetry (the flight recorder).
		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics (Prometheus text), /status (live bottleneck self-diagnosis), /debug/vars and /debug/pprof on this address while the node runs")
		timelinePath  = flag.String("timeline", "", "sample all metrics periodically and write the timeline here at exit (.csv for CSV, else JSON)")
		sampleEvery   = flag.Duration("sample-interval", 250*time.Millisecond, "timeline sampling interval")
		reportPath    = flag.String("report", "", "write an end-of-run self-diagnosis report here at exit (markdown when the path ends in .md, JSON otherwise)")
		reportEvery   = flag.Duration("report-interval", 500*time.Millisecond, "snapshot-diff window width for /status and -report")

		// Fleet control tower (cluster-wide aggregation).
		fleetSpec     = flag.String("fleet", "", "aggregate a fleet: comma-separated node=role=addr peers to scrape over HTTP (role: sender|relay|gateway), e.g. 'updraft1=sender=host:9100,gw=gateway=host:9101'; this node's own engine joins automatically; serves /cluster and /alerts on -telemetry-addr")
		sloSpec       = flag.String("slo", "", "cluster SLOs evaluated per fleet window, e.g. 'e2e_p99_ms<=250,fair_share>=0.5,holes<=0'; alert states land on /alerts and in -cluster-report")
		fleetEvery    = flag.Duration("fleet-interval", time.Second, "fleet aggregation tick interval")
		clusterReport = flag.String("cluster-report", "", "write an end-of-run cluster report here at exit (markdown when the path ends in .md, JSON otherwise); implies fleet aggregation even with no -fleet peers")
		profileDir    = flag.String("profile-dir", "", "capture rate-limited pprof CPU+heap artifacts into this directory when a cluster SLO alert fires or the fleet verdict enters a degraded regime")

		// Robustness (sender).
		sendHorizon  = flag.Duration("send-horizon", 0, "sender: fail sends after all peers stay dead this long (0 = wait forever)")
		writeTimeout = flag.Duration("write-timeout", 0, "sender: per-message write deadline (0 = none)")

		// Robustness (receiver).
		failHard     = flag.Bool("fail-hard", false, "receiver: abort on the first malformed or corrupt chunk instead of quarantining")
		maxBadChunks = flag.Int("max-bad-chunks", 0, "receiver: abort after more than this many quarantined chunks (0 = no limit)")
		exactlyOnce  = flag.Bool("exactly-once", false, "receiver: dedup repeated (stream, seq) chunks with the exactly-once ledger; dup_drops and ledger_abandoned land in -telemetry-addr's /metrics")

		// Thousand-stream gateway (receiver scale).
		shardsFlag   = flag.Int("shards", 0, "receiver: sharded receive queues — 0 = legacy single pull queue, -1 = one shard per NUMA domain, >0 explicit shard count")
		maxStreams   = flag.Int("max-streams", 0, "receiver: admission cap on concurrent streams; streams past it are rejected and counted in streams_rejected (0 = unlimited; needs -shards)")
		streamCredit = flag.Int("stream-credit", 0, "receiver: per-stream credit window bounding one stream's in-flight chunks; a stalled consumer blocks only its own stream (default 8; needs -shards)")
		streamCap    = flag.Int("stream-cap", 0, "per-stream metrics series cap: distinct stream ids tracked before folding into the _stream_other bucket (default 64)")

		// Fault injection (sender transport; for drills and tests).
		faultSeed         = flag.Int64("fault-seed", 1, "fault plan RNG seed")
		faultResetBytes   = flag.Int64("fault-reset-bytes", 0, "inject a connection reset after this many sent bytes (0 = off)")
		faultStallBytes   = flag.Int64("fault-stall-bytes", 0, "inject a write stall after this many sent bytes (0 = off)")
		faultStall        = flag.Duration("fault-stall", time.Second, "duration of the injected stall")
		faultCorruptBytes = flag.Int64("fault-corrupt-bytes", 0, "flip one payload bit after this many sent bytes (0 = off)")
		faultPlanStr      = flag.String("fault-plan", "", "sender: full fault plan DSL, e.g. 'reset@w10, stall@1MB:50ms, corrupt@2MB:bit3, refuse:0-2, seed=7'; overrides the single-fault flags")
	)
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "numastream: -config is required")
		os.Exit(2)
	}
	if *bufpoolMode != "on" && *bufpoolMode != "off" {
		fmt.Fprintf(os.Stderr, "numastream: -bufpool must be on or off, got %q\n", *bufpoolMode)
		os.Exit(2)
	}
	disableBufPool := *bufpoolMode == "off"
	data, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	cfg, err := runtime.DecodeConfig(data)
	if err != nil {
		fatal(err)
	}

	topo, ok := numa.Discover()
	if !ok {
		fmt.Fprintln(os.Stderr, "numastream: NUMA discovery unavailable; placement will be best-effort")
	}

	reg := metrics.NewRegistry()
	if *streamCap > 0 {
		reg.SetStreamCap(*streamCap)
	}
	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(1 << 20)
	}
	// The self-diagnosis engine rides along whenever something surfaces
	// it: the /status endpoint, the -report artifact, or the fleet
	// aggregator (which folds this node's own diagnosis in).
	fleetActive := *fleetSpec != "" || *sloSpec != "" || *clusterReport != ""

	// The adaptive placement controller needs two hookups made before
	// the engine exists: the elastic pool controls (its hands) and the
	// window stream (its eyes). -adapt implies the obs engine.
	var controls *pipeline.Controls
	var ctrl *adapt.Controller
	if *adaptOn {
		controls = pipeline.NewControls()
		ctrl = adapt.New(adaptPolicy(cfg, topo, *nicDomain), controls)
	}
	var obsEng *obs.Engine
	if *telemetryAddr != "" || *reportPath != "" || fleetActive || *adaptOn {
		opts := obs.Options{
			Interval: *reportEvery,
			Node:     cfg.Node,
			Workers:  stageWorkers(cfg),
		}
		if ctrl != nil {
			opts.OnWindow = ctrl.OnWindow
		}
		obsEng = obs.NewEngine(reg, opts)
		if ctrl != nil {
			ctrl.BindEngine(obsEng)
		}
		obsEng.Start()
	}
	var agg *fleet.Aggregator
	if fleetActive {
		slos, err := fleet.ParseSLOs(*sloSpec)
		if err != nil {
			fatal(err)
		}
		fOpts := fleet.Options{Fleet: cfg.Node, Interval: *fleetEvery, SLOs: slos}
		if *profileDir != "" {
			fOpts.Profiler = &fleet.Profiler{Dir: *profileDir}
		}
		agg = fleet.New(fOpts)
		selfRole := fleet.RoleSender
		if cfg.Role == runtime.Receiver {
			selfRole = fleet.RoleGateway
		}
		agg.AddSource(fleet.EngineSource(cfg.Node, selfRole, obsEng))
		if err := addFleetPeers(agg, *fleetSpec); err != nil {
			fatal(err)
		}
		agg.Start()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.ServeWith(*telemetryAddr, reg, telemetry.Options{Tracer: tracer, Obs: obsEng, Fleet: agg, Adapt: ctrl})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		extra := "/healthz, /status, /debug/vars, /debug/pprof"
		if tracer != nil {
			extra += ", /trace"
		}
		if agg != nil {
			extra += ", /cluster, /alerts"
		}
		fmt.Printf("telemetry: http://%s/metrics (also %s)\n", srv.Addr(), extra)
	}
	var sampler *metrics.Sampler
	if *timelinePath != "" {
		sampler = metrics.NewSampler(reg, *sampleEvery, 1<<16)
		sampler.Start()
	}
	switch cfg.Role {
	case runtime.Sender:
		if *peers == "" {
			fmt.Fprintln(os.Stderr, "numastream: sender needs -peers")
			os.Exit(2)
		}
		sOpts := pipeline.SenderOptions{
			Cfg:          cfg,
			Topo:         topo,
			Peers:        strings.Split(*peers, ","),
			Source:       newSource(*chunks, *scale, *synthetic),
			Metrics:      reg,
			Tracer:       tracer,
			SendHorizon:  *sendHorizon,
			WriteTimeout: *writeTimeout,
			WireTrace:    *traceWire,

			Controls:       controls,
			DisableBufPool: disableBufPool,
		}
		var plan faults.Plan
		if *faultPlanStr != "" {
			plan, err = faults.ParseFaultPlan(*faultPlanStr)
			if err != nil {
				fatal(err)
			}
		} else {
			plan.Seed = *faultSeed
			if *faultResetBytes > 0 {
				plan.Faults = append(plan.Faults, faults.Fault{Kind: faults.Reset, AfterBytes: *faultResetBytes})
			}
			if *faultStallBytes > 0 {
				plan.Faults = append(plan.Faults, faults.Fault{Kind: faults.Stall, AfterBytes: *faultStallBytes, Stall: *faultStall})
			}
			if *faultCorruptBytes > 0 {
				plan.Faults = append(plan.Faults, faults.Fault{Kind: faults.Corrupt, AfterBytes: *faultCorruptBytes, Bit: -1})
			}
		}
		if len(plan.Faults) > 0 || len(plan.Refuse) > 0 {
			sOpts.Dial = faults.NewInjector(plan).Dialer(nil)
		}
		err = pipeline.RunSender(sOpts)
	case runtime.Receiver:
		opts := pipeline.ReceiverOptions{
			Cfg:          cfg,
			Topo:         topo,
			Bind:         *bind,
			Expect:       *chunks,
			Metrics:      reg,
			Tracer:       tracer,
			FailHard:     *failHard,
			MaxBadChunks: *maxBadChunks,
			ExactlyOnce:  *exactlyOnce,

			Shards:       *shardsFlag,
			MaxStreams:   *maxStreams,
			StreamCredit: *streamCredit,

			Controls:       controls,
			DisableBufPool: disableBufPool,
		}
		if *serve {
			// Serve until SIGINT/SIGTERM.
			stop := make(chan struct{})
			sigs := make(chan os.Signal, 1)
			signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
			go func() {
				<-sigs
				close(stop)
			}()
			opts.Expect = 0
			opts.Stop = stop
		}
		err = pipeline.RunReceiver(opts)
	default:
		err = fmt.Errorf("config has unknown role %q", cfg.Role)
	}
	if err != nil {
		fatal(err)
	}
	if obsEng != nil {
		obsEng.Stop()
	}
	if agg != nil {
		agg.Stop()
	}
	if *clusterReport != "" {
		rep := agg.Report()
		if err := fleet.WriteReportFile(*clusterReport, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("cluster report written to %s (dominant: %s)\n", *clusterReport, rep.Dominant)
	}
	if *reportPath != "" {
		rep := obsEng.Report()
		if ctrl != nil {
			if err := adapt.WriteReportFile(*reportPath, ctrl.Report(rep)); err != nil {
				fatal(err)
			}
		} else if err := obs.WriteReportFile(*reportPath, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("self-diagnosis report written to %s (dominant regime: %s)\n", *reportPath, rep.Dominant)
	}
	if sampler != nil {
		sampler.Stop()
		f, err := os.Create(*timelinePath)
		if err != nil {
			fatal(err)
		}
		tl := sampler.Timeline()
		if strings.HasSuffix(*timelinePath, ".csv") {
			err = tl.WriteCSV(f)
		} else {
			err = tl.WriteJSON(f)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline (%d samples, %d evicted) written to %s\n", tl.Len(), tl.Dropped(), *timelinePath)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace (%d events, %d dropped) written to %s\n", tracer.Len(), tracer.Dropped(), *tracePath)
	}
	if ctrl != nil {
		actions := ctrl.Actions()
		fmt.Printf("adaptive placement: %d actions\n", len(actions))
		if len(actions) > 0 {
			fmt.Print(adapt.FormatActions(actions))
		}
	}
	fmt.Printf("%s %q done:\n%s", cfg.Role, cfg.Node, reg.String())
}

// newSource yields n chunks: synthetic patterned data, or parallel-beam
// projections of a sphere phantom at detector/scale resolution.
func newSource(n, scale int, synthetic bool) func() []byte {
	var mu sync.Mutex
	i := 0
	if synthetic {
		return func() []byte {
			mu.Lock()
			defer mu.Unlock()
			if i >= n {
				return nil
			}
			i++
			chunk := make([]byte, tomo.ChunkBytes/(scale*scale))
			for j := range chunk {
				chunk[j] = byte(j / 64) // compressible runs
			}
			return chunk
		}
	}
	cfg := tomo.DefaultProjectionConfig()
	if scale > 1 {
		cfg.Width /= scale
		cfg.Height /= scale
	}
	gen := tomo.NewGenerator(tomo.RandomPhantom(1, 60), cfg, 360)
	return func() []byte {
		mu.Lock()
		defer mu.Unlock()
		if i >= n {
			return nil
		}
		i++
		return gen.Next()
	}
}

// addFleetPeers parses the -fleet DSL ("node=role=addr", comma
// separated) into HTTP scrape sources on the aggregator.
func addFleetPeers(agg *fleet.Aggregator, spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 3)
		if len(parts) != 3 {
			return fmt.Errorf("-fleet entry %q: want node=role=addr", entry)
		}
		var role fleet.Role
		switch parts[1] {
		case "sender":
			role = fleet.RoleSender
		case "relay":
			role = fleet.RoleRelay
		case "gateway":
			role = fleet.RoleGateway
		default:
			return fmt.Errorf("-fleet entry %q: role must be sender, relay or gateway", entry)
		}
		agg.AddSource(fleet.HTTPSource(parts[0], role, parts[2]))
	}
	return nil
}

// adaptPolicy builds the runtime controller tuning: the defaults
// (hysteresis 3, 2s cooldown, step 2), domains from the discovered
// topology, and per-stage growth capped at twice the configured count —
// the config is the operator's sizing; adaptation refines it but never
// runs away from it.
func adaptPolicy(cfg runtime.NodeConfig, topo numa.HostTopology, nicDomain int) adapt.Policy {
	pol := adapt.DefaultPolicy()
	pol.NICDomain = nicDomain
	for _, n := range topo.Nodes {
		pol.Domains = append(pol.Domains, n.ID)
	}
	pol.MaxWorkers = map[string]int{}
	for stage, n := range stageWorkers(cfg) {
		pol.MaxWorkers[stage] = 2 * n
	}
	return pol
}

// stageWorkers maps stage name → configured worker count from the node
// config, giving the self-diagnosis engine its utilization denominator.
func stageWorkers(cfg runtime.NodeConfig) map[string]int {
	w := make(map[string]int, len(cfg.Groups))
	for _, g := range cfg.Groups {
		w[string(g.Type)] += g.Count
	}
	return w
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "numastream: %v\n", err)
	os.Exit(1)
}
