// Command experiments regenerates the paper's evaluation: every table
// and figure of §3 and §4, printed in the paper's shape. See
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	experiments -fig all
//	experiments -fig 5        # receiver throughput vs #processes
//	experiments -fig 6 -fig 7 # core usage / remote access heatmaps
//	experiments -fig 8 -quick # compression sweep, reduced thread set
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"numastream/internal/experiments"
	"numastream/internal/faults"
	"numastream/internal/metrics"
	"numastream/internal/obs"
	"numastream/internal/telemetry"
)

type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	quick := flag.Bool("quick", false, "reduced sweeps for a fast run")
	tracePath := flag.String("trace", "", "write a Chrome trace of the Fig 14 gateway to this file")
	csvDir := flag.String("csv", "", "also write figN.csv files into this directory")
	rssStreams := flag.Int("rss", 0, "run the RSS steering study with this many streams (extension)")
	real := flag.Bool("real", false, "run the real-execution loopback sweep on this machine")
	dualNIC := flag.Bool("dual-nic", false, "run the dual-NIC gateway study (extension)")
	degraded := flag.Bool("degraded", false, "run the degraded-mode link fault simulation (robustness)")
	degradedReal := flag.Bool("degraded-real", false, "run the real-mode fault injection loopback (robustness)")
	churn := flag.Bool("churn", false, "run the churn-storm simulation: a seeded topology schedule crashes senders and relays on a multi-hop deployment (robustness)")
	churnReal := flag.Bool("churn-real", false, "run the real-mode churn drill: relay forwarders killed and restarted mid-stream, exactly-once ledger on the gateway (robustness)")
	adaptDrill := flag.Bool("adapt", false, "run the adaptive placement convergence drill: from a deliberately bad config (1 compress worker, everything on one socket) the feedback controller must converge to within 10% of the tuned configuration, deterministically (test)")
	adaptSeed := flag.Int64("adapt-seed", 1, "adapt drill RNG seed (-adapt)")
	adaptJSON := flag.String("adapt-json", "", "write the -adapt drill result (throughputs, action log, regime story) as JSON to this file; byte-identical across runs with the same seed")
	fleetDrill := flag.Bool("fleet", false, "run the fleet control-tower drills: throttled-uplink attribution and churn availability alert, each checked against the drill contract (observability)")
	profileDir := flag.String("profile-dir", "", "directory for regime/alert-triggered pprof captures during -fleet (default: none captured)")
	churnSeed := flag.Int64("churn-seed", 11, "churn storm RNG seed (-churn)")
	churnFile := flag.String("churn-file", "", "topology event file replacing the generated storm: '<t> <NODEUP|NODEDOWN|LINKUP|LINKDOWN> <name>' lines, OLSR '<t> <UP|DOWN> <from> <to>' also accepted")
	traceWire := flag.String("trace-wire", "", "run the wire-journey loopback (real pipeline, WireTrace on) and write the merged cross-process Chrome trace to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /status, /debug/vars and /debug/pprof on this address; real-mode harnesses record into the served registry")
	report := flag.String("report", "", "write an end-of-run self-diagnosis report to this file (markdown when the path ends in .md, JSON otherwise); -degraded reports the simulation's virtual-time windows")
	bufpoolMode := flag.String("bufpool", "on", "NUMA-aware buffer pooling in the real-execution harnesses: on | off (off = per-chunk allocation, for pooled-vs-unpooled A/B sweeps)")
	flag.Var(&figs, "fig", "figure to regenerate (5,6,7,8,9,11,12,14 or all); repeatable")
	flag.Parse()

	if *bufpoolMode != "on" && *bufpoolMode != "off" {
		fmt.Fprintf(os.Stderr, "experiments: -bufpool must be on or off, got %q\n", *bufpoolMode)
		os.Exit(2)
	}
	experiments.DisableBufPool = *bufpoolMode == "off"

	if len(figs) == 0 {
		figs = figList{"all"}
	}
	want := map[string]bool{}
	for _, f := range figs {
		if f == "all" {
			for _, k := range []string{"5", "6", "7", "8", "9", "11", "12", "14"} {
				want[k] = true
			}
			continue
		}
		want[f] = true
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	// The live registry: nil unless -telemetry-addr or -report needs one,
	// in which case the real-mode harnesses share it so the endpoint and
	// the report see them mid-run.
	var reg *metrics.Registry
	var obsEng *obs.Engine
	if *telemetryAddr != "" || *report != "" {
		reg = metrics.NewRegistry()
	}
	if *report != "" {
		// Short windows: the loopback drills run for seconds, and the
		// report should still resolve several verdict windows.
		obsEng = obs.NewEngine(reg, obs.Options{Node: "experiments", Interval: 100 * time.Millisecond})
		obsEng.Start()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.ServeWith(*telemetryAddr, reg, telemetry.Options{Obs: obsEng})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /status, /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	// The degraded simulation self-diagnoses on virtual time; its windows
	// take precedence in the report over the wall-clock engine (which
	// sees nothing during a simulated run).
	var simWindows []obs.Window
	var simRegimes []obs.Regime

	// writeCSV writes one figure's CSV when -csv is set.
	writeCSV := func(name string, emit func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(err)
		}
		if err := emit(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if want["5"] {
		counts := experiments.Fig5ProcessCounts
		if *quick {
			counts = []int{4, 32, 128}
		}
		res, err := experiments.Fig5Streaming(counts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig5(res))
		writeCSV("fig5.csv", func(w *os.File) error { return experiments.CSVFig5(w, res) })
	}
	if want["6"] || want["7"] {
		res, err := experiments.Fig6CoreUsage(nil)
		if err != nil {
			fail(err)
		}
		if want["6"] {
			fmt.Println(experiments.Fig6Heat(res))
		}
		if want["7"] {
			fmt.Println(experiments.Fig7Heat(res))
		}
	}
	if want["8"] {
		counts := experiments.Fig8ThreadCounts
		if *quick {
			counts = []int{8, 16, 32}
		}
		res := experiments.Fig8Compression(counts)
		fmt.Println(experiments.FormatCodec(
			"Figure 8a: compression throughput (Gbps, uncompressed side) per Table 1 configuration",
			res, counts))
		fmt.Println(experiments.CodecHeat(
			"Figure 8b: core usage at 16 and 32 compression threads (0-9 = busy fraction)",
			res, intersect(counts, []int{16, 32})))
		writeCSV("fig8.csv", func(w *os.File) error { return experiments.CSVCodec(w, res) })
	}
	if want["9"] {
		counts := experiments.Fig9ThreadCounts
		if *quick {
			counts = []int{8, 16}
		}
		res := experiments.Fig9Decompression(counts)
		fmt.Println(experiments.FormatCodec(
			"Figure 9a: decompression throughput (Gbps, uncompressed side) per Table 1 configuration",
			res, counts))
		fmt.Println(experiments.CodecHeat(
			"Figure 9b: core usage at 8 and 16 decompression threads (0-9 = busy fraction)",
			res, intersect(counts, []int{8, 16})))
		writeCSV("fig9.csv", func(w *os.File) error { return experiments.CSVCodec(w, res) })
	}
	if want["11"] {
		counts := experiments.Fig11ThreadCounts
		if *quick {
			counts = []int{1, 2, 3, 4}
		}
		res, err := experiments.Fig11Network(counts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig11(res))
		writeCSV("fig11.csv", func(w *os.File) error { return experiments.CSVFig11(w, res) })
	}
	if want["12"] {
		counts := experiments.Fig12ThreadCounts
		if *quick {
			counts = []int{1, 8}
		}
		res, err := experiments.Fig12EndToEnd(counts)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig12(res))
		writeCSV("fig12.csv", func(w *os.File) error { return experiments.CSVFig12(w, res) })
	}
	if *real {
		res, err := experiments.RealScaling([]int{1, 2, 4}, 48, 512<<10)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatReal(res))
	}
	if *dualNIC {
		res, err := experiments.DualNICStudy()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatDualNIC(res))
	}
	if *degraded {
		res, err := experiments.DegradedSim()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatDegradedSim(res))
		simWindows, simRegimes = res.Windows, res.Regimes
	}
	if *degradedReal {
		chunks, chunkBytes := 64, 512<<10
		if *quick {
			chunks, chunkBytes = 32, 128<<10
		}
		res, err := experiments.DegradedLoopbackInto(reg, chunks, chunkBytes)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatDegradedReal(res))
	}
	if *churn || *churnReal {
		var sched faults.TopoSchedule
		if *churnFile != "" {
			f, err := os.Open(*churnFile)
			if err != nil {
				fail(err)
			}
			sched, err = faults.ParseTopoSchedule(f)
			f.Close()
			if err != nil {
				fail(err)
			}
		}
		if *churn {
			res, err := experiments.ChurnSim(*churnSeed, sched)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.FormatChurnSim(res))
		}
		if *churnReal {
			chunks, chunkBytes := 96, 128<<10
			if *quick {
				chunks, chunkBytes = 32, 32<<10
			}
			res, err := experiments.ChurnLoopbackInto(reg, chunks, chunkBytes, sched)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.FormatChurnReal(res))
		}
	}
	if *fleetDrill {
		for _, run := range []struct {
			name string
			fn   func(string) (experiments.FleetSimResult, error)
		}{
			{"throttled-uplink", experiments.FleetThrottledUplinkSim},
			{"churn-alert", experiments.FleetChurnAlertSim},
		} {
			res, err := run.fn(*profileDir)
			if err != nil {
				fail(err)
			}
			fmt.Println(experiments.FormatFleetSim(res))
			if err := res.Check(); err != nil {
				fail(fmt.Errorf("fleet drill %s: %w", run.name, err))
			}
			fired, resolved := 0, 0
			for _, a := range res.Alerts {
				fired += a.Fired
				resolved += a.Resolved
			}
			fmt.Printf("fleet drill %s: PASS — dominant %s@%s:%s, alerts fired/resolved %d/%d\n",
				run.name, res.Report.Dominant, res.Report.DominantNode, res.Report.DominantStage, fired, resolved)
		}
	}
	if *adaptDrill {
		res, err := experiments.AdaptSim(*adaptSeed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatAdaptSim(res))
		if err := res.Check(); err != nil {
			fail(fmt.Errorf("adapt drill: %w", err))
		}
		if *adaptJSON != "" {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*adaptJSON, append(out, '\n'), 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Printf("adapt drill: PASS — converged to %.0f%% of tuned with %d actions over %d windows\n",
			100*res.Converged(), len(res.Actions), res.Windows)
	}
	if *traceWire != "" {
		chunks, chunkBytes := 64, 256<<10
		if *quick {
			chunks, chunkBytes = 24, 64<<10
		}
		tr, res, err := experiments.WireJourneyLoopback(reg, chunks, chunkBytes)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatJourney(res))
		f, err := os.Create(*traceWire)
		if err != nil {
			fail(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("merged journey trace (%d events) written to %s — open at ui.perfetto.dev\n", tr.Len(), *traceWire)
	}
	if *rssStreams > 0 {
		res, err := experiments.RSSStudy(*rssStreams)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatRSS(res))
	}
	if want["14"] {
		rt, osr, factor, err := experiments.Fig14Speedup()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatFig14(rt, osr, factor))
		writeCSV("fig14.csv", func(w *os.File) error { return experiments.CSVFig14(w, rt, osr) })

		if *tracePath != "" {
			tr, _, err := experiments.Fig14Trace(experiments.ModeRuntime)
			if err != nil {
				fail(err)
			}
			f, err := os.Create(*tracePath)
			if err != nil {
				fail(err)
			}
			if err := tr.WriteJSON(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("gateway trace (%d events) written to %s; per-stage busy time:\n%s\n",
				tr.Len(), *tracePath, tr.Summary())
		}
	}

	if *report != "" {
		var rep obs.Report
		if len(simWindows) > 0 {
			rep = obs.BuildReport("degraded-sim", simWindows, simRegimes, 0)
		} else {
			obsEng.Stop()
			rep = obsEng.Report()
		}
		if err := obs.WriteReportFile(*report, rep); err != nil {
			fail(err)
		}
		fmt.Printf("self-diagnosis report written to %s (dominant regime: %s)\n", *report, rep.Dominant)
	}
}

// intersect returns the values of want that appear in have.
func intersect(have, want []int) []int {
	var out []int
	for _, w := range want {
		for _, h := range have {
			if h == w {
				out = append(out, w)
				break
			}
		}
	}
	return out
}
