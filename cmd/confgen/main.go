// Command confgen is the runtime configuration generator of Figure 4 as
// a standalone tool: topology knowledge in, a per-node JSON
// configuration out.
//
// Usage:
//
//	confgen -role receiver -node lynxdtn -sockets 2 -cores 16 \
//	        -nic-socket 1 -streams 4 -compression
//	confgen -role sender -node updraft1 -sockets 2 -cores 16 \
//	        -nic-socket 1 -compression -send-threads 4
//	confgen -role receiver -discover            # use this host's topology
package main

import (
	"flag"
	"fmt"
	"os"

	"numastream/internal/numa"
	"numastream/internal/runtime"
)

func main() {
	var (
		role        = flag.String("role", "", "node role: sender or receiver (required)")
		node        = flag.String("node", "node", "node name recorded in the config")
		sockets     = flag.Int("sockets", 2, "NUMA socket count")
		cores       = flag.Int("cores", 16, "cores per socket")
		nicSocket   = flag.Int("nic-socket", 1, "NUMA socket the data NIC is attached to")
		streams     = flag.Int("streams", 1, "concurrent streams this node serves")
		compression = flag.Bool("compression", false, "enable compression/decompression stages")
		sendThreads = flag.Int("send-threads", 0, "send/receive threads per stream (0 = auto)")
		discover    = flag.Bool("discover", false, "take socket/core counts from this host's topology")
		osBaseline  = flag.Bool("os-baseline", false, "emit the OS-placement baseline instead")
	)
	flag.Parse()

	topo := runtime.TopologyInfo{
		Sockets:        *sockets,
		CoresPerSocket: *cores,
		NICSocket:      *nicSocket,
	}
	if *discover {
		host, ok := numa.Discover()
		if !ok {
			fmt.Fprintln(os.Stderr, "confgen: host NUMA discovery unavailable; using synthetic topology")
		}
		topo.Sockets = len(host.Nodes)
		if topo.Sockets > 0 {
			topo.CoresPerSocket = len(host.Nodes[0].CPUs)
		}
		if *nicSocket >= topo.Sockets {
			topo.NICSocket = topo.Sockets - 1
		}
	}

	opts := runtime.GenerateOptions{
		Streams:     *streams,
		Compression: *compression,
		SendThreads: *sendThreads,
	}

	var cfg runtime.NodeConfig
	var err error
	switch runtime.Role(*role) {
	case runtime.Sender:
		cfg, err = runtime.GenerateSenderConfig(*node, topo, opts)
	case runtime.Receiver:
		cfg, err = runtime.GenerateReceiverConfig(*node, topo, opts)
	default:
		fmt.Fprintf(os.Stderr, "confgen: -role must be %q or %q\n", runtime.Sender, runtime.Receiver)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "confgen: %v\n", err)
		os.Exit(1)
	}
	if *osBaseline {
		cfg = runtime.GenerateOSBaseline(cfg)
	}

	data, err := runtime.EncodeConfig(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "confgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}
