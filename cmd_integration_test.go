package numastream_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// Integration tests for the command-line tools: build each binary once
// and drive realistic invocations end to end.

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles the cmd binaries into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "numastream-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"confgen", "topoinfo", "nsdata", "numastream", "experiments"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("building %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), bin), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLIConfgenEmitsValidJSON(t *testing.T) {
	out := run(t, "confgen", "-role", "receiver", "-node", "gw",
		"-sockets", "2", "-cores", "16", "-nic-socket", "1",
		"-streams", "4", "-compression")
	var cfg map[string]any
	if err := json.Unmarshal([]byte(out), &cfg); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if cfg["role"] != "receiver" || cfg["node"] != "gw" {
		t.Fatalf("config = %v", cfg)
	}
	groups := cfg["groups"].([]any)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestCLIConfgenOSBaseline(t *testing.T) {
	out := run(t, "confgen", "-role", "sender", "-compression", "-os-baseline")
	if !strings.Contains(out, `"mode": "os"`) {
		t.Fatalf("baseline config lacks OS placement:\n%s", out)
	}
}

func TestCLITopoinfo(t *testing.T) {
	out := run(t, "topoinfo")
	if !strings.Contains(out, "nodes:") || !strings.Contains(out, "node 0:") {
		t.Fatalf("topoinfo output:\n%s", out)
	}
}

func TestCLINsdataLifecycle(t *testing.T) {
	dir := t.TempDir()
	scan := filepath.Join(dir, "scan.nscf")
	out := run(t, "nsdata", "generate", "-out", scan, "-angles", "6", "-scale", "16")
	if !strings.Contains(out, "6 projections") {
		t.Fatalf("generate output:\n%s", out)
	}
	out = run(t, "nsdata", "info", scan)
	if !strings.Contains(out, "6 chunks") || !strings.Contains(out, "uint16") {
		t.Fatalf("info output:\n%s", out)
	}
	out = run(t, "nsdata", "verify", scan)
	if !strings.Contains(out, "verified") {
		t.Fatalf("verify output:\n%s", out)
	}
	out = run(t, "nsdata", "ratio", scan)
	if !strings.Contains(out, "average LZ4 ratio") {
		t.Fatalf("ratio output:\n%s", out)
	}
}

func TestCLIExperimentsQuick(t *testing.T) {
	out := run(t, "experiments", "-fig", "11", "-quick")
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "100.0") {
		t.Fatalf("experiments output:\n%s", out)
	}
}

func TestCLIStreamingPair(t *testing.T) {
	dir := t.TempDir()
	rcvCfg := filepath.Join(dir, "rcv.json")
	sndCfg := filepath.Join(dir, "snd.json")
	os.WriteFile(rcvCfg, []byte(run(t, "confgen", "-role", "receiver", "-node", "gw",
		"-sockets", "1", "-cores", "1", "-nic-socket", "0", "-compression")), 0o644)
	os.WriteFile(sndCfg, []byte(run(t, "confgen", "-role", "sender", "-node", "src",
		"-sockets", "1", "-cores", "1", "-nic-socket", "0", "-compression")), 0o644)

	const addr = "127.0.0.1:19773"
	recvOut := make(chan string, 1)
	recvErr := make(chan error, 1)
	go func() {
		cmd := exec.Command(filepath.Join(buildTools(t), "numastream"),
			"-config", rcvCfg, "-bind", addr, "-chunks", "4", "-scale", "16", "-synthetic")
		out, err := cmd.CombinedOutput()
		recvOut <- string(out)
		recvErr <- err
	}()

	// The sender's PUSH socket redials until the receiver binds, so
	// launch order does not matter.
	sndOut := run(t, "numastream",
		"-config", sndCfg, "-peers", addr, "-chunks", "4", "-scale", "16", "-synthetic")
	if !strings.Contains(sndOut, `sender "src" done`) {
		t.Fatalf("sender output:\n%s", sndOut)
	}
	out := <-recvOut
	if err := <-recvErr; err != nil {
		t.Fatalf("receiver: %v\n%s", err, out)
	}
	if !strings.Contains(out, `receiver "gw" done`) || !strings.Contains(out, "4 items") {
		t.Fatalf("receiver output:\n%s", out)
	}
}

// promSample matches one Prometheus text-exposition sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestCLITelemetryEndpoint(t *testing.T) {
	dir := t.TempDir()
	rcvCfg := filepath.Join(dir, "rcv.json")
	sndCfg := filepath.Join(dir, "snd.json")
	timeline := filepath.Join(dir, "timeline.json")
	os.WriteFile(rcvCfg, []byte(run(t, "confgen", "-role", "receiver", "-node", "gw",
		"-sockets", "1", "-cores", "1", "-nic-socket", "0", "-compression")), 0o644)
	os.WriteFile(sndCfg, []byte(run(t, "confgen", "-role", "sender", "-node", "src",
		"-sockets", "1", "-cores", "1", "-nic-socket", "0", "-compression")), 0o644)

	// Fixed ports, distinct from TestCLIStreamingPair's 19773.
	const streamAddr = "127.0.0.1:19774"
	const telemetryAddr = "127.0.0.1:19775"

	var rcvOut bytes.Buffer
	rcv := exec.Command(filepath.Join(buildTools(t), "numastream"),
		"-config", rcvCfg, "-bind", streamAddr, "-serve", "-scale", "16", "-synthetic",
		"-telemetry-addr", telemetryAddr,
		"-timeline", timeline, "-sample-interval", "20ms")
	rcv.Stdout = &rcvOut
	rcv.Stderr = &rcvOut
	if err := rcv.Start(); err != nil {
		t.Fatalf("starting receiver: %v", err)
	}
	defer rcv.Process.Kill()

	// Wait for the telemetry endpoint to come up.
	scrape := func() (string, error) {
		resp, err := http.Get("http://" + telemetryAddr + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}
	var page string
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		page, err = scrape()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("telemetry endpoint never came up: %v\nreceiver output:\n%s", err, rcvOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Stream a few chunks through, then scrape again: receive-side
	// series must be live and the whole page must parse.
	run(t, "numastream",
		"-config", sndCfg, "-peers", streamAddr, "-chunks", "4", "-scale", "16", "-synthetic")
	page, err = scrape()
	if err != nil {
		t.Fatalf("scrape after stream: %v", err)
	}
	if !strings.Contains(page, "numastream_receive_bytes_total") {
		t.Fatalf("/metrics lacks the receive meter:\n%s", page)
	}
	for _, line := range strings.Split(strings.TrimSpace(page), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("unparseable exposition line %q in:\n%s", line, page)
		}
	}

	// SIGINT drains the receiver; it must exit cleanly and dump the
	// timeline.
	if err := rcv.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("interrupting receiver: %v", err)
	}
	if err := rcv.Wait(); err != nil {
		t.Fatalf("receiver exit: %v\n%s", err, rcvOut.String())
	}
	if !strings.Contains(rcvOut.String(), `receiver "gw" done`) {
		t.Fatalf("receiver output:\n%s", rcvOut.String())
	}
	data, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatalf("timeline dump: %v", err)
	}
	var dump struct {
		Points []map[string]any `json:"points"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(dump.Points) == 0 {
		t.Fatal("timeline dump has no samples")
	}
}

func TestCLIExperimentsCSVAndExtensions(t *testing.T) {
	dir := t.TempDir()
	out := run(t, "experiments", "-fig", "12", "-quick", "-csv", dir)
	if !strings.Contains(out, "bottleneck") {
		t.Fatalf("fig 12 output lacks the bottleneck column:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig12.csv"))
	if err != nil {
		t.Fatalf("fig12.csv: %v", err)
	}
	if !strings.HasPrefix(string(data), "config,threads,recv_domain,e2e_gbps,net_gbps") {
		t.Fatalf("fig12.csv header:\n%s", data[:80])
	}

	out = run(t, "experiments", "-dual-nic", "-fig", "none")
	if !strings.Contains(out, "dual-aligned") {
		t.Fatalf("dual-nic output:\n%s", out)
	}
	out = run(t, "experiments", "-rss", "2", "-fig", "none")
	if !strings.Contains(out, "scattered") {
		t.Fatalf("rss output:\n%s", out)
	}
}

func TestCLIExperimentsWireJourney(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "journey.json")
	out := run(t, "experiments", "-fig", "none", "-quick", "-trace-wire", tracePath)
	if !strings.Contains(out, "Wire-journey loopback") || !strings.Contains(out, "clock offset") {
		t.Fatalf("journey output:\n%s", out)
	}
	if !strings.Contains(out, "merged journey trace") {
		t.Fatalf("no trace confirmation in output:\n%s", out)
	}
	checkJourneyTrace(t, tracePath, "journey-src", "journey-gw")
}

// checkJourneyTrace asserts that a merged cross-process trace file holds
// flow-linked spans on both the sender and receiver tracks: every flow
// start ("ph":"s") on the sender pid has a matching finish ("ph":"f") on
// the receiver pid under the same flow id.
func checkJourneyTrace(t *testing.T, path, senderPid, receiverPid string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	pids := map[string]bool{}
	starts := map[string]string{} // flow id -> pid of the "s" event
	finishes := map[string]string{}
	for _, e := range events {
		pid, _ := e["pid"].(string)
		pids[pid] = true
		id, _ := e["id"].(string)
		switch e["ph"] {
		case "s":
			starts[id] = pid
		case "f":
			finishes[id] = pid
		}
	}
	if !pids[senderPid] || !pids[receiverPid] {
		t.Fatalf("trace lacks both process tracks (have %v, want %q and %q)", pids, senderPid, receiverPid)
	}
	if len(starts) == 0 {
		t.Fatalf("trace has no flow events (%d events total)", len(events))
	}
	for id, pid := range starts {
		if pid != senderPid {
			t.Fatalf("flow %s starts on %q, want %q", id, pid, senderPid)
		}
		if fp, ok := finishes[id]; !ok || fp != receiverPid {
			t.Fatalf("flow %s finish = %q, %v; want %q", id, fp, ok, receiverPid)
		}
	}
}

func TestCLIWireTracePair(t *testing.T) {
	dir := t.TempDir()
	rcvCfg := filepath.Join(dir, "rcv.json")
	sndCfg := filepath.Join(dir, "snd.json")
	tracePath := filepath.Join(dir, "journey.json")
	os.WriteFile(rcvCfg, []byte(run(t, "confgen", "-role", "receiver", "-node", "gw",
		"-sockets", "1", "-cores", "1", "-nic-socket", "0", "-compression")), 0o644)
	os.WriteFile(sndCfg, []byte(run(t, "confgen", "-role", "sender", "-node", "src",
		"-sockets", "1", "-cores", "1", "-nic-socket", "0", "-compression")), 0o644)

	// Fixed ports, distinct from the other CLI tests.
	const streamAddr = "127.0.0.1:19776"
	const telemetryAddr = "127.0.0.1:19777"
	const chunks = 6

	var rcvOut bytes.Buffer
	rcv := exec.Command(filepath.Join(buildTools(t), "numastream"),
		"-config", rcvCfg, "-bind", streamAddr, "-serve", "-scale", "16", "-synthetic",
		"-telemetry-addr", telemetryAddr, "-trace", tracePath)
	rcv.Stdout = &rcvOut
	rcv.Stderr = &rcvOut
	if err := rcv.Start(); err != nil {
		t.Fatalf("starting receiver: %v", err)
	}
	defer rcv.Process.Kill()

	scrape := func() (string, error) {
		resp, err := http.Get("http://" + telemetryAddr + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	// A sender with -trace-wire stamps a trace context on every frame;
	// the receiver stitches journeys from them without any flag.
	run(t, "numastream", "-config", sndCfg, "-peers", streamAddr,
		"-chunks", "4", "-scale", "16", "-synthetic", "-trace-wire")
	run(t, "numastream", "-config", sndCfg, "-peers", streamAddr,
		"-chunks", "2", "-scale", "16", "-synthetic", "-trace-wire")

	// The journey histograms fill as chunks are delivered; poll until all
	// have landed (deliveries can trail the sender's exit briefly).
	countRe := regexp.MustCompile(`numastream_chunk_e2e_seconds_count (\d+)`)
	var page string
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		page, err = scrape()
		if err == nil {
			if m := countRe.FindStringSubmatch(page); m != nil && m[1] == "6" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("chunk_e2e_seconds never reached %d journeys; err=%v\n/metrics:\n%s\nreceiver:\n%s",
				chunks, err, page, rcvOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Non-empty quantiles: at least one finite bucket below +Inf holds
	// counts, and the sum is a positive number of seconds.
	bucketRe := regexp.MustCompile(`numastream_chunk_e2e_seconds_bucket\{le="[0-9][^"]*"\} ([1-9]\d*)`)
	if !bucketRe.MatchString(page) {
		t.Fatalf("chunk_e2e_seconds has no populated finite buckets:\n%s", page)
	}
	sumRe := regexp.MustCompile(`numastream_chunk_e2e_seconds_sum ([0-9.e+-]+)`)
	m := sumRe.FindStringSubmatch(page)
	if m == nil || m[1] == "0" {
		t.Fatalf("chunk_e2e_seconds_sum missing or zero: %v", m)
	}
	if !strings.Contains(page, "numastream_chunk_wire_seconds_count 6") {
		t.Fatalf("chunk_wire_seconds not populated:\n%s", page)
	}
	if !strings.Contains(page, "numastream_trace_ctx_bad_total 0") {
		t.Fatalf("bad trace contexts reported:\n%s", page)
	}

	// SIGINT drains the receiver; the dumped trace is the merged journey
	// trace: sender spans (offset-corrected, pid "src") flow-linked into
	// the receiver's own spans (pid "gw").
	if err := rcv.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("interrupting receiver: %v", err)
	}
	if err := rcv.Wait(); err != nil {
		t.Fatalf("receiver exit: %v\n%s", err, rcvOut.String())
	}
	checkJourneyTrace(t, tracePath, "src", "gw")
}

func TestCLIExperimentsTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "gw.json")
	out := run(t, "experiments", "-fig", "14", "-trace", tracePath)
	if !strings.Contains(out, "1.48X") {
		t.Fatalf("fig 14 output:\n%s", out)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
}
